// Package server turns the linkage pipeline into a long-lived query
// service: it holds one census series, computes each successive year-pair's
// record and group linkage at most once (lazily on first demand, behind a
// single-flight cache, or eagerly at startup) and serves the results — with
// full per-link provenance — plus the household evolution patterns,
// timelines and per-record lifecycles derived from them over JSON HTTP
// endpoints. The series is not frozen: POST /v1/census ingests a newly
// arrived census year — linking only the new pair and extending the
// evolution graph in place — and GET /v1/evolution/watch streams the
// resulting household transitions to subscribers (SSE with a long-poll
// fallback), so clients follow the series instead of re-querying it.
// Observability is the same internal/obs collector the CLIs use, exported
// in Prometheus text format on /metrics alongside /healthz and
// /debug/pprof; concurrency of the expensive pair computations is bounded
// by a semaphore and request-scoped deadlines flow into the pipeline's
// cancellation checkpoints.
package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"censuslink/internal/census"
	"censuslink/internal/hgraph"
	"censuslink/internal/linkage"
	"censuslink/internal/obs"
	"censuslink/internal/server/api"
)

// linkFunc is the pipeline entry point; tests substitute it to observe or
// stall computations.
type linkFunc func(ctx context.Context, old, new *census.Dataset, cfg linkage.Config) (*linkage.Result, error)

// Config configures a linkage query service over one census series.
type Config struct {
	// Series is the loaded census series; it must hold at least two
	// datasets. The datasets themselves are immutable, but the series grows
	// when new census years are ingested through POST /v1/census — readers
	// always see a consistent snapshot via an atomic swap.
	Series *census.Series
	// Linkage is the pipeline configuration applied to every year pair. Its
	// Obs field is overridden by the server's own collector.
	Linkage linkage.Config
	// MaxConcurrent bounds how many year-pair linkage computations may run
	// at once (each one already parallelizes internally via
	// Linkage.Workers); <= 0 means 2.
	MaxConcurrent int
	// ComputeTimeout caps one pair computation; 0 means no cap. A request
	// that triggers the computation can still abandon it earlier through
	// its own deadline — when the last waiter gives up, the pipeline run is
	// cancelled.
	ComputeTimeout time.Duration
	// Stats receives pipeline counters and stage timings; a fresh collector
	// is created when nil. The same collector feeds /metrics.
	Stats *obs.Stats
	// MaxInFlight bounds how many API requests may be in flight at once;
	// excess requests are shed immediately with a 503 `overloaded` envelope
	// and a Retry-After hint instead of queueing into collapse. <= 0 means
	// no cap. /healthz and /metrics are exempt, so the server stays
	// observable while shedding.
	MaxInFlight int
	// RateLimit caps each client's sustained request rate (requests per
	// second, keyed by remote IP) with a token bucket of RateBurst
	// capacity; a client over budget gets 429 `rate_limited` with
	// Retry-After. <= 0 disables per-client limiting.
	RateLimit float64
	// RateBurst is the token-bucket capacity of RateLimit; values < 1 are
	// clamped to 1.
	RateBurst int
	// Store, when non-nil, persists pair results across restarts
	// (internal/store implements it). The cache warm-starts from it at
	// construction — every pair whose (config fingerprint, dataset hashes)
	// address has a trusted snapshot is served without running the pipeline —
	// and each freshly computed pair is written back. Hits, misses and
	// rejected snapshots appear on /metrics as the store_hits, store_misses
	// and store_corrupt counters.
	//
	// The store is an accelerator, never a dependency: when it misbehaves
	// (storeDegradedAfter consecutive I/O failures) the server flips into
	// degraded mode — every query keeps being answered from cache and
	// pipeline, write-throughs pause, /healthz reports "degraded" and the
	// censuslink_store_degraded gauge reads 1 — and recovers automatically
	// once the store answers again, flushing results computed meanwhile.
	Store linkage.ResultStore
	// StoreRefresh, when > 0 and Store is set, runs a background loop every
	// StoreRefresh interval that adopts snapshots other replicas of this
	// series have written (so N stateless linkservers sharing one store
	// directory serve each other's work without recomputing) and doubles as
	// degraded mode's recovery probe, backing off while the store stays
	// down. The loop stops when Abort is called.
	StoreRefresh time.Duration
	// MaxIngestBytes caps the request body of POST /v1/census; larger
	// uploads are rejected with 413 `too_large`. <= 0 means 64 MiB.
	MaxIngestBytes int64
	// WatchBuffer is how many change-feed events the watch hub retains for
	// Last-Event-ID replay; a subscriber resuming from further back gets the
	// retained suffix. <= 0 means 1024.
	WatchBuffer int
	// WatchHeartbeat is the SSE keep-alive comment interval; 0 means 15s.
	WatchHeartbeat time.Duration

	// linkFn substitutes the pipeline in tests; nil means
	// linkage.LinkContext.
	linkFn linkFunc
}

// seriesState is one immutable snapshot of the served series. Ingest builds
// a new state and swaps the pointer; requests load it once and stay
// internally consistent for their whole lifetime.
type seriesState struct {
	series *census.Series
	// gen counts ingests (the seed series is gen 0); it stamps watch events
	// and the ingest response so operators can correlate them.
	gen uint64
	// seriesHash fingerprints the member datasets. Every ETag hashes it in,
	// so ingesting a year invalidates all cached validators at once — a
	// conditional GET after an ingest refetches a fresh body even on
	// endpoints whose underlying pair did not change (clients see one
	// consistent series version, not a mix).
	seriesHash string
}

func newSeriesState(series *census.Series, gen uint64) *seriesState {
	parts := make([]string, 0, len(series.Datasets))
	for _, d := range series.Datasets {
		parts = append(parts, d.ContentHash())
	}
	return &seriesState{series: series, gen: gen, seriesHash: makeETag(parts...)}
}

// Server is the HTTP query service. Create with New; it is safe for
// concurrent use.
type Server struct {
	state          atomic.Pointer[seriesState]
	linkCfg        linkage.Config
	stats          *obs.Stats
	linkFn         linkFunc
	computeTimeout time.Duration

	// store persists pair results (nil: no persistence); cfgHash is the
	// linkage configuration fingerprint all snapshot addresses share;
	// health is the store's degraded-mode state machine.
	store   linkage.ResultStore
	cfgHash string
	health  *storeHealth

	// sem bounds concurrent pair computations.
	sem chan struct{}

	// maxInFlight caps concurrently served API requests (apiInflight is
	// the live count); limiter is the per-client token bucket (nil: no
	// limiting).
	maxInFlight int
	apiInflight atomic.Int64
	limiter     *tokenBuckets

	// ingestMu serializes POST /v1/census: ingests are rare and ordered —
	// two concurrent uploads of the same year must resolve to one 201 and
	// one 409, never two linked pairs.
	ingestMu       sync.Mutex
	maxIngestBytes int64

	// watch fans change-feed events out to SSE and long-poll subscribers.
	watch          *watchHub
	watchHeartbeat time.Duration

	// baseCtx parents every computation; abort cancels them all on
	// shutdown.
	baseCtx context.Context
	abort   context.CancelFunc

	cache *pairCache

	mux       *http.ServeMux
	handler   http.Handler
	apiRoutes []route
	started   time.Time
	inflight  atomic.Int64
	requests  *requestCounters
}

// New validates the configuration and builds the service. No computation
// starts until the first query (or Precompute).
func New(cfg Config) (*Server, error) {
	if cfg.Series == nil || len(cfg.Series.Datasets) < 2 {
		return nil, fmt.Errorf("server: need a series of at least two censuses")
	}
	if err := cfg.Linkage.Validate(); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	stats := cfg.Stats
	if stats == nil {
		stats = obs.NewStats(nil)
	}
	maxc := cfg.MaxConcurrent
	if maxc <= 0 {
		maxc = 2
	}
	fn := cfg.linkFn
	if fn == nil {
		fn = linkage.LinkContext
	}
	maxIngest := cfg.MaxIngestBytes
	if maxIngest <= 0 {
		maxIngest = 64 << 20
	}
	heartbeat := cfg.WatchHeartbeat
	if heartbeat <= 0 {
		heartbeat = 15 * time.Second
	}
	baseCtx, abort := context.WithCancel(context.Background())
	s := &Server{
		linkCfg:        cfg.Linkage,
		stats:          stats,
		linkFn:         fn,
		computeTimeout: cfg.ComputeTimeout,
		sem:            make(chan struct{}, maxc),
		maxInFlight:    cfg.MaxInFlight,
		limiter:        newTokenBuckets(cfg.RateLimit, cfg.RateBurst),
		maxIngestBytes: maxIngest,
		watch:          newWatchHub(cfg.WatchBuffer),
		watchHeartbeat: heartbeat,
		baseCtx:        baseCtx,
		abort:          abort,
		started:        time.Now(),
		requests:       newRequestCounters(),
		// The configuration fingerprint is half of every response's content
		// address: the snapshot store keys by it, and the ETags of the
		// immutable query endpoints hash it in.
		cfgHash: cfg.Linkage.Fingerprint(),
	}
	// One enrichment cache across all pairs and ingests: each census year's
	// household graphs are built once for the server's lifetime.
	if s.linkCfg.GraphCache == nil {
		s.linkCfg.GraphCache = hgraph.NewCache()
	}
	s.state.Store(newSeriesState(cfg.Series, 0))
	if cfg.Store != nil {
		s.store = cfg.Store
	}
	s.health = newStoreHealth(stats)
	s.cache = newPairCache(s)
	s.cache.warmStart()
	if s.store != nil && cfg.StoreRefresh > 0 {
		go s.cache.refreshLoop(s.baseCtx, cfg.StoreRefresh)
	}
	s.mux = http.NewServeMux()
	s.routes()
	s.handler = s.mux
	return s, nil
}

// cur returns the current series snapshot. Handlers load it once per
// request; the cache loads it per operation (earlier pairs are shared
// between snapshots, so pair index i means the same datasets in every
// snapshot that contains it).
func (s *Server) cur() *seriesState { return s.state.Load() }

// route describes one /v1 endpoint: how it is mounted, how it is counted,
// and how it renders into the machine-readable route table
// (GET /v1/openapi.json) that cmd/loadgen discovers endpoints from.
type route struct {
	method  string // HTTP method
	path    string // /v1-relative pattern, e.g. "/links/{old}/{new}/records"
	name    string // operation id; also the metrics endpoint label
	summary string
	params  []paramDoc
	// paginated endpoints carry the uniform page window
	// (limit/offset/cursor) and its parameters in the route table.
	paginated bool
	// streaming marks the change feed: loadgen's discovery skips it and
	// OpenAPI flags it x-streaming.
	streaming bool
	// legacyAlias mounts the endpoint under the deprecated unprefixed /api
	// prefix too (the pre-v1 surface; new endpoints never get one).
	legacyAlias bool
	h           http.HandlerFunc
}

type paramDoc struct {
	name     string // parameter name
	in       string // "path" or "query"
	typ      string // "integer" or "string"
	desc     string
	required bool
}

// pageParamDocs are the shared pagination parameters of every paginated
// list endpoint. Offset pagination is documented as deprecated for
// feed-like reads: the series can grow between pages, while a cursor
// detects the change (410) instead of silently skipping items.
var pageParamDocs = []paramDoc{
	{name: "limit", in: "query", typ: "integer", desc: "page size (1..1000, default 100)"},
	{name: "offset", in: "query", typ: "integer", desc: "items to skip; deprecated for feed-like reads, prefer cursor"},
	{name: "cursor", in: "query", typ: "string", desc: "opaque resume token from the previous page's page.next_cursor; pass empty (?cursor=) to opt in on the first page"},
}

// routes registers every endpoint. Query endpoints live under /v1/; the
// historical unprefixed /api/ paths stay as aliases answering identically
// but emitting a Deprecation header pointing at the successor. Query
// handlers are wrapped by api — load shedding and per-client rate limits
// ahead of the request counters, latency histograms and the in-flight
// gauge on /metrics; /healthz and /metrics are infrastructure, not API:
// they are counted but never shed, so the server stays observable under
// overload.
func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.counted("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.counted("metrics", s.handleMetrics))

	pairParams := []paramDoc{
		{name: "old", in: "path", typ: "integer", desc: "older census year of a successive pair", required: true},
		{name: "new", in: "path", typ: "integer", desc: "newer census year of a successive pair", required: true},
	}
	s.apiRoutes = []route{
		{method: "GET", path: "/years", name: "years", legacyAlias: true,
			summary: "census years and successive pairs of the served series",
			h:       s.handleYears},
		{method: "GET", path: "/links/{old}/{new}/records", name: "record_links", legacyAlias: true, paginated: true,
			summary: "1:1 record links of one census pair with per-link provenance",
			params: append([]paramDoc{
				{name: "record", in: "query", typ: "string", desc: "restrict to links touching this record id"},
				{name: "source", in: "query", typ: "string", desc: "restrict to one stage: subgraph or remainder"},
			}, pairParams...),
			h: s.handleRecordLinks},
		{method: "GET", path: "/links/{old}/{new}/groups", name: "group_links", legacyAlias: true, paginated: true,
			summary: "household links of one census pair",
			params:  pairParams,
			h:       s.handleGroupLinks},
		{method: "GET", path: "/evolution/{old}/{new}/patterns", name: "patterns", legacyAlias: true, paginated: true,
			summary: "evolution-pattern counts and typed events of one census pair",
			params:  pairParams,
			h:       s.handlePatterns},
		{method: "GET", path: "/households/{year}/{id}/timeline", name: "household_timeline", legacyAlias: true,
			summary: "forward evolution of one household through the series",
			params: []paramDoc{
				{name: "year", in: "path", typ: "integer", desc: "census year", required: true},
				{name: "id", in: "path", typ: "string", desc: "household id", required: true},
			},
			h: s.handleHouseholdTimeline},
		{method: "GET", path: "/records/{year}/{id}/lifecycle", name: "record_lifecycle", legacyAlias: true,
			summary: "reconstructed person history through one census record",
			params: []paramDoc{
				{name: "year", in: "path", typ: "integer", desc: "census year", required: true},
				{name: "id", in: "path", typ: "string", desc: "record id", required: true},
			},
			h: s.handleRecordLifecycle},
		{method: "GET", path: "/timelines", name: "timelines", legacyAlias: true, paginated: true,
			summary: "per-person timelines of the whole series, longest first",
			params: []paramDoc{
				{name: "min_span", in: "query", typ: "integer", desc: "minimum censuses traced through (default 2)"},
			},
			h: s.handleTimelines},
		{method: "POST", path: "/census", name: "census_ingest",
			summary: "ingest a newly arrived census year (CSV upload with ?year=, or a JSON {path, year} reference); links the new pair, extends the evolution graph and publishes change-feed events",
			params: []paramDoc{
				{name: "year", in: "query", typ: "integer", desc: "census year of the uploaded CSV (required for CSV bodies)"},
			},
			h: s.handleIngest},
		{method: "GET", path: "/evolution/watch", name: "evolution_watch", streaming: true,
			summary: "change feed of household evolution events: SSE by default (Last-Event-ID resume), JSON long-poll with ?mode=poll",
			params: []paramDoc{
				{name: "mode", in: "query", typ: "string", desc: "poll for the long-poll fallback; default SSE"},
				{name: "after", in: "query", typ: "integer", desc: "long-poll: return events with id greater than this"},
				{name: "wait", in: "query", typ: "string", desc: "long-poll: how long to wait for the first event (duration, max 55s)"},
				{name: "last_event_id", in: "query", typ: "integer", desc: "SSE resume point when the Last-Event-ID header is inconvenient"},
			},
			h: s.handleWatch},
		{method: "GET", path: "/openapi.json", name: "openapi",
			summary: "machine-readable route table of this surface (OpenAPI 3.0)",
			h:       s.handleOpenAPI},
	}
	for _, rt := range s.apiRoutes {
		pattern := rt.method + " /v1" + rt.path
		s.mux.HandleFunc(pattern, s.api(rt.name, rt.h))
		if rt.legacyAlias {
			s.mux.HandleFunc(rt.method+" /api"+rt.path, s.api(rt.name, deprecatedAlias(rt.h)))
		}
	}

	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// deprecatedAlias wraps a legacy unprefixed /api handler: it answers
// exactly like its /v1 twin but carries the RFC 9745 deprecation headers,
// so clients learn where to migrate without breaking today.
func deprecatedAlias(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		api.Deprecated(w, "/v1"+strings.TrimPrefix(r.URL.Path, "/api"))
		h(w, r)
	}
}

// Handler returns the service's HTTP handler, for mounting on an
// http.Server or httptest.
func (s *Server) Handler() http.Handler { return s.handler }

// Stats returns the pipeline collector backing /metrics, so callers can
// flush a final JSON report on shutdown.
func (s *Server) Stats() *obs.Stats { return s.stats }

// Precompute runs the linkage of every year pair (bounded by
// MaxConcurrent) and assembles the evolution bundle, so the first queries
// hit a warm cache. It shares the single-flight slots with concurrent
// requests and respects ctx.
func (s *Server) Precompute(ctx context.Context) error {
	if _, err := s.cache.allResults(ctx, s.cur()); err != nil {
		return err
	}
	_, err := s.cache.bundle(ctx)
	return err
}

// Abort cancels every in-flight and future computation: queries that are
// waiting fail promptly, watch subscribers are disconnected, and new
// queries are refused by handlers observing the closed base context. Call
// after draining HTTP requests on shutdown.
func (s *Server) Abort() { s.abort() }

// shuttingDown reports whether Abort has been called.
func (s *Server) shuttingDown() bool {
	select {
	case <-s.baseCtx.Done():
		return true
	default:
		return false
	}
}
