// Package server turns the linkage pipeline into a long-lived query
// service: it holds one census series, computes each successive year-pair's
// record and group linkage at most once (lazily on first demand, behind a
// single-flight cache, or eagerly at startup) and serves the results — with
// full per-link provenance — plus the household evolution patterns,
// timelines and per-record lifecycles derived from them over JSON HTTP
// endpoints. Observability is the same internal/obs collector the CLIs use,
// exported in Prometheus text format on /metrics alongside /healthz and
// /debug/pprof; concurrency of the expensive pair computations is bounded
// by a semaphore and request-scoped deadlines flow into the pipeline's
// cancellation checkpoints.
package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync/atomic"
	"time"

	"censuslink/internal/census"
	"censuslink/internal/linkage"
	"censuslink/internal/obs"
)

// linkFunc is the pipeline entry point; tests substitute it to observe or
// stall computations.
type linkFunc func(ctx context.Context, old, new *census.Dataset, cfg linkage.Config) (*linkage.Result, error)

// Config configures a linkage query service over one census series.
type Config struct {
	// Series is the loaded census series; it must hold at least two
	// datasets and is treated as immutable for the server's lifetime.
	Series *census.Series
	// Linkage is the pipeline configuration applied to every year pair. Its
	// Obs field is overridden by the server's own collector.
	Linkage linkage.Config
	// MaxConcurrent bounds how many year-pair linkage computations may run
	// at once (each one already parallelizes internally via
	// Linkage.Workers); <= 0 means 2.
	MaxConcurrent int
	// ComputeTimeout caps one pair computation; 0 means no cap. A request
	// that triggers the computation can still abandon it earlier through
	// its own deadline — when the last waiter gives up, the pipeline run is
	// cancelled.
	ComputeTimeout time.Duration
	// Stats receives pipeline counters and stage timings; a fresh collector
	// is created when nil. The same collector feeds /metrics.
	Stats *obs.Stats
	// MaxInFlight bounds how many API requests may be in flight at once;
	// excess requests are shed immediately with a 503 `overloaded` envelope
	// and a Retry-After hint instead of queueing into collapse. <= 0 means
	// no cap. /healthz and /metrics are exempt, so the server stays
	// observable while shedding.
	MaxInFlight int
	// RateLimit caps each client's sustained request rate (requests per
	// second, keyed by remote IP) with a token bucket of RateBurst
	// capacity; a client over budget gets 429 `rate_limited` with
	// Retry-After. <= 0 disables per-client limiting.
	RateLimit float64
	// RateBurst is the token-bucket capacity of RateLimit; values < 1 are
	// clamped to 1.
	RateBurst int
	// Store, when non-nil, persists pair results across restarts
	// (internal/store implements it). The cache warm-starts from it at
	// construction — every pair whose (config fingerprint, dataset hashes)
	// address has a trusted snapshot is served without running the pipeline —
	// and each freshly computed pair is written back. Hits, misses and
	// rejected snapshots appear on /metrics as the store_hits, store_misses
	// and store_corrupt counters.
	//
	// The store is an accelerator, never a dependency: when it misbehaves
	// (storeDegradedAfter consecutive I/O failures) the server flips into
	// degraded mode — every query keeps being answered from cache and
	// pipeline, write-throughs pause, /healthz reports "degraded" and the
	// censuslink_store_degraded gauge reads 1 — and recovers automatically
	// once the store answers again, flushing results computed meanwhile.
	Store linkage.ResultStore
	// StoreRefresh, when > 0 and Store is set, runs a background loop every
	// StoreRefresh interval that adopts snapshots other replicas of this
	// series have written (so N stateless linkservers sharing one store
	// directory serve each other's work without recomputing) and doubles as
	// degraded mode's recovery probe, backing off while the store stays
	// down. The loop stops when Abort is called.
	StoreRefresh time.Duration

	// linkFn substitutes the pipeline in tests; nil means
	// linkage.LinkContext.
	linkFn linkFunc
}

// Server is the HTTP query service. Create with New; it is safe for
// concurrent use.
type Server struct {
	series         *census.Series
	linkCfg        linkage.Config
	stats          *obs.Stats
	linkFn         linkFunc
	computeTimeout time.Duration

	// store persists pair results (nil: no persistence); cfgHash is the
	// linkage configuration fingerprint all snapshot addresses share;
	// health is the store's degraded-mode state machine.
	store   linkage.ResultStore
	cfgHash string
	health  *storeHealth

	// sem bounds concurrent pair computations.
	sem chan struct{}

	// maxInFlight caps concurrently served API requests (apiInflight is
	// the live count); limiter is the per-client token bucket (nil: no
	// limiting).
	maxInFlight int
	apiInflight atomic.Int64
	limiter     *tokenBuckets

	// baseCtx parents every computation; abort cancels them all on
	// shutdown.
	baseCtx context.Context
	abort   context.CancelFunc

	cache *pairCache

	mux      *http.ServeMux
	handler  http.Handler
	started  time.Time
	inflight atomic.Int64
	requests *requestCounters
}

// New validates the configuration and builds the service. No computation
// starts until the first query (or Precompute).
func New(cfg Config) (*Server, error) {
	if cfg.Series == nil || len(cfg.Series.Datasets) < 2 {
		return nil, fmt.Errorf("server: need a series of at least two censuses")
	}
	if err := cfg.Linkage.Validate(); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	stats := cfg.Stats
	if stats == nil {
		stats = obs.NewStats(nil)
	}
	maxc := cfg.MaxConcurrent
	if maxc <= 0 {
		maxc = 2
	}
	fn := cfg.linkFn
	if fn == nil {
		fn = linkage.LinkContext
	}
	baseCtx, abort := context.WithCancel(context.Background())
	s := &Server{
		series:         cfg.Series,
		linkCfg:        cfg.Linkage,
		stats:          stats,
		linkFn:         fn,
		computeTimeout: cfg.ComputeTimeout,
		sem:            make(chan struct{}, maxc),
		maxInFlight:    cfg.MaxInFlight,
		limiter:        newTokenBuckets(cfg.RateLimit, cfg.RateBurst),
		baseCtx:        baseCtx,
		abort:          abort,
		started:        time.Now(),
		requests:       newRequestCounters(),
		// The configuration fingerprint is half of every response's content
		// address: the snapshot store keys by it, and the ETags of the
		// immutable query endpoints hash it in.
		cfgHash: cfg.Linkage.Fingerprint(),
	}
	if cfg.Store != nil {
		s.store = cfg.Store
	}
	s.health = newStoreHealth(stats)
	s.cache = newPairCache(s)
	s.cache.warmStart()
	if s.store != nil && cfg.StoreRefresh > 0 {
		go s.cache.refreshLoop(s.baseCtx, cfg.StoreRefresh)
	}
	s.mux = http.NewServeMux()
	s.routes()
	s.handler = s.mux
	return s, nil
}

// routes registers every endpoint. Query endpoints live under /v1/; the
// historical unprefixed /api/ paths stay as aliases answering identically
// but emitting a Deprecation header pointing at the successor. Query
// handlers are wrapped by api — load shedding and per-client rate limits
// ahead of the request counters, latency histograms and the in-flight
// gauge on /metrics; /healthz and /metrics are infrastructure, not API:
// they are counted but never shed, so the server stays observable under
// overload.
func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.counted("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.counted("metrics", s.handleMetrics))

	api := []struct {
		path string
		name string
		h    http.HandlerFunc
	}{
		{"/years", "years", s.handleYears},
		{"/links/{old}/{new}/records", "record_links", s.handleRecordLinks},
		{"/links/{old}/{new}/groups", "group_links", s.handleGroupLinks},
		{"/evolution/{old}/{new}/patterns", "patterns", s.handlePatterns},
		{"/households/{year}/{id}/timeline", "household_timeline", s.handleHouseholdTimeline},
		{"/records/{year}/{id}/lifecycle", "record_lifecycle", s.handleRecordLifecycle},
		{"/timelines", "timelines", s.handleTimelines},
	}
	for _, e := range api {
		s.mux.HandleFunc("GET /v1"+e.path, s.api(e.name, e.h))
		s.mux.HandleFunc("GET /api"+e.path, s.api(e.name, deprecatedAlias(e.h)))
	}

	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// deprecatedAlias wraps a legacy unprefixed /api handler: it answers
// exactly like its /v1 twin but emits a Deprecation header (RFC 9745) and a
// Link header naming the successor path, so clients learn where to migrate
// without breaking today.
func deprecatedAlias(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link",
			fmt.Sprintf("<%s>; rel=\"successor-version\"", "/v1"+strings.TrimPrefix(r.URL.Path, "/api")))
		h(w, r)
	}
}

// Handler returns the service's HTTP handler, for mounting on an
// http.Server or httptest.
func (s *Server) Handler() http.Handler { return s.handler }

// Stats returns the pipeline collector backing /metrics, so callers can
// flush a final JSON report on shutdown.
func (s *Server) Stats() *obs.Stats { return s.stats }

// Precompute runs the linkage of every year pair (bounded by
// MaxConcurrent) and assembles the evolution bundle, so the first queries
// hit a warm cache. It shares the single-flight slots with concurrent
// requests and respects ctx.
func (s *Server) Precompute(ctx context.Context) error {
	if _, err := s.cache.allResults(ctx); err != nil {
		return err
	}
	_, err := s.cache.bundle(ctx)
	return err
}

// Abort cancels every in-flight and future computation: queries that are
// waiting fail promptly and new ones are refused by handlers observing the
// closed base context. Call after draining HTTP requests on shutdown.
func (s *Server) Abort() { s.abort() }

// shuttingDown reports whether Abort has been called.
func (s *Server) shuttingDown() bool {
	select {
	case <-s.baseCtx.Done():
		return true
	default:
		return false
	}
}
