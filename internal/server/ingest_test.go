package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"censuslink/internal/census"
	"censuslink/internal/server/api"
)

// agedDataset ages every household and record of src by one decade into a
// new census year, substituting the year tag in the IDs — the same aging
// scheme testSeries uses for its third census.
func agedDataset(t *testing.T, src *census.Dataset, oldTag, newTag string, year int) *census.Dataset {
	t.Helper()
	ds := census.NewDataset(year)
	for _, h := range src.Households() {
		nh := &census.Household{ID: strings.Replace(h.ID, oldTag, newTag, 1)}
		if err := ds.AddHousehold(nh); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range src.Records() {
		nr := *r
		nr.ID = strings.Replace(r.ID, oldTag, newTag, 1)
		nr.HouseholdID = strings.Replace(r.HouseholdID, oldTag, newTag, 1)
		nr.Age += 10
		if err := ds.AddRecord(&nr); err != nil {
			t.Fatal(err)
		}
	}
	return ds
}

// csvBody renders a dataset as the CSV the ingest endpoint accepts.
func csvBody(t *testing.T, ds *census.Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := census.WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postCSV(t *testing.T, ts *httptest.Server, year int, body []byte) (int, []byte) {
	t.Helper()
	resp, err := ts.Client().Post(
		fmt.Sprintf("%s/v1/census?year=%d", ts.URL, year), "text/csv", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	_, _ = out.ReadFrom(resp.Body)
	return resp.StatusCode, out.Bytes()
}

// TestIngestEndToEnd is the ingest acceptance path: a POSTed census year is
// linked, served, and invalidates the whole conditional-GET surface; the
// incrementally extended evolution state is indistinguishable from a server
// seeded with the full series; duplicate and out-of-order years are
// rejected.
func TestIngestEndToEnd(t *testing.T) {
	srv, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Abort()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Make the evolution bundle resident so the ingest extends it in place.
	var pre struct {
		Page api.Page `json:"page"`
	}
	getJSON(t, ts, "/v1/timelines?limit=2&cursor=", &pre)
	if pre.Page.NextCursor == "" {
		t.Fatal("no next_cursor on the first cursor page")
	}

	// Capture a pre-ingest validator of a pair-link endpoint.
	resp, err := ts.Client().Get(ts.URL + "/v1/links/1881/1891/records")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	oldETag := resp.Header.Get("ETag")
	if oldETag == "" {
		t.Fatal("no ETag on pair-link response")
	}
	conditional := func(etag string) int {
		req, _ := http.NewRequest("GET", ts.URL+"/v1/links/1881/1891/records", nil)
		req.Header.Set("If-None-Match", etag)
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := conditional(oldETag); got != http.StatusNotModified {
		t.Fatalf("pre-ingest conditional GET = %d, want 304", got)
	}

	// Ingest 1901.
	third := srv.cur().series.Dataset(1891)
	fourth := agedDataset(t, third, "1891", "1901", 1901)
	status, body := postCSV(t, ts, 1901, csvBody(t, fourth))
	if status != http.StatusCreated {
		t.Fatalf("POST /v1/census = %d: %s", status, body)
	}
	var ing ingestResponseJSON
	if err := json.Unmarshal(body, &ing); err != nil {
		t.Fatal(err)
	}
	if ing.Year != 1901 || ing.OldYear != 1891 || ing.Generation != 1 {
		t.Errorf("ingest summary = %+v", ing)
	}
	if !ing.Incremental {
		t.Error("bundle was resident but the ingest did not extend it incrementally")
	}
	if ing.RecordLinks == 0 || ing.GroupLinks == 0 {
		t.Errorf("new pair linked nothing: %+v", ing)
	}

	// The ETag surface flipped: the SAME pair endpoint revalidates to 200.
	if got := conditional(oldETag); got != http.StatusOK {
		t.Fatalf("post-ingest conditional GET = %d, want 200 (stale 304)", got)
	}

	// The series grew and the new pair serves.
	var years struct {
		Years      []int  `json:"years"`
		Generation uint64 `json:"generation"`
	}
	getJSON(t, ts, "/v1/years", &years)
	if len(years.Years) != 4 || years.Years[3] != 1901 || years.Generation != 1 {
		t.Errorf("/v1/years = %+v", years)
	}
	status, _ = get(t, ts, "/v1/links/1891/1901/records")
	if status != http.StatusOK {
		t.Errorf("new pair endpoint = %d", status)
	}

	// A cursor minted against the pre-ingest series is gone (410), not
	// silently wrong.
	status, body = get(t, ts, "/v1/timelines?limit=2&cursor="+pre.Page.NextCursor)
	if status != http.StatusGone {
		t.Errorf("stale cursor = %d: %s, want 410", status, body)
	}

	// Differential: the incrementally grown server must answer exactly like
	// one seeded with the full four-census series.
	refCfg := testConfig(t)
	refCfg.Series = census.NewSeries(append(
		append([]*census.Dataset{}, refCfg.Series.Datasets...), fourth)...)
	ref, err := New(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Abort()
	tsRef := httptest.NewServer(ref.Handler())
	defer tsRef.Close()
	for _, p := range []string{
		"/v1/timelines?limit=1000&min_span=2",
		"/v1/evolution/1891/1901/patterns?limit=1000",
		"/v1/records/1871/1871_1/lifecycle",
		"/v1/households/1871/1871_a/timeline",
	} {
		_, gotBody := get(t, ts, p)
		_, wantBody := get(t, tsRef, p)
		if !bytes.Equal(gotBody, wantBody) {
			t.Errorf("%s: incremental response differs from full rebuild\n got: %s\nwant: %s", p, gotBody, wantBody)
		}
	}

	// Duplicate and out-of-order years conflict; a missing year is a 400.
	if status, _ = postCSV(t, ts, 1901, csvBody(t, fourth)); status != http.StatusConflict {
		t.Errorf("duplicate year = %d, want 409", status)
	}
	if status, _ = postCSV(t, ts, 1841, csvBody(t, agedDataset(t, third, "1891", "1841", 1841))); status != http.StatusConflict {
		t.Errorf("out-of-order year = %d, want 409", status)
	}
	resp, err = ts.Client().Post(ts.URL+"/v1/census", "text/csv", bytes.NewReader(csvBody(t, fourth)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing ?year= = %d, want 400", resp.StatusCode)
	}
}

// TestIngestColdBundle: ingesting before anything touched the evolution
// bundle skips the incremental path and leaves a consistent lazy rebuild.
func TestIngestColdBundle(t *testing.T) {
	srv, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Abort()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	third := srv.cur().series.Dataset(1891)
	fourth := agedDataset(t, third, "1891", "1901", 1901)
	status, body := postCSV(t, ts, 1901, csvBody(t, fourth))
	if status != http.StatusCreated {
		t.Fatalf("POST = %d: %s", status, body)
	}
	var ing ingestResponseJSON
	if err := json.Unmarshal(body, &ing); err != nil {
		t.Fatal(err)
	}
	if ing.Incremental {
		t.Error("no bundle was resident, yet the ingest claims an incremental extension")
	}
	// The lazily rebuilt bundle covers the new year.
	var tl struct {
		Page api.Page `json:"page"`
		List []struct {
			Span int `json:"span"`
		} `json:"timelines"`
	}
	getJSON(t, ts, "/v1/timelines?min_span=4&limit=5", &tl)
	if tl.Page.Total == 0 {
		t.Error("no 4-census timelines after ingest: bundle did not cover the new year")
	}
}

// TestIngestJSONReference: the {"path", "year"} form reads a file the
// server can access instead of an uploaded body.
func TestIngestJSONReference(t *testing.T) {
	srv, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Abort()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	third := srv.cur().series.Dataset(1891)
	fourth := agedDataset(t, third, "1891", "1901", 1901)
	path := filepath.Join(t.TempDir(), census.SeriesFileName(1901))
	if err := os.WriteFile(path, csvBody(t, fourth), 0o644); err != nil {
		t.Fatal(err)
	}
	ref, _ := json.Marshal(map[string]any{"path": path, "year": 1901})
	resp, err := ts.Client().Post(ts.URL+"/v1/census", "application/json", bytes.NewReader(ref))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		var out bytes.Buffer
		_, _ = out.ReadFrom(resp.Body)
		t.Fatalf("JSON ingest = %d: %s", resp.StatusCode, out.String())
	}
	var years struct {
		Years []int `json:"years"`
	}
	getJSON(t, ts, "/v1/years", &years)
	if len(years.Years) != 4 {
		t.Errorf("years after JSON ingest = %v", years.Years)
	}
}

// TestIngestTooLarge: an upload above MaxIngestBytes is refused with the
// typed 413 envelope.
func TestIngestTooLarge(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxIngestBytes = 64
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Abort()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	third := srv.cur().series.Dataset(1891)
	big := csvBody(t, agedDataset(t, third, "1891", "1901", 1901))
	status, body := postCSV(t, ts, 1901, big)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized ingest = %d: %s, want 413", status, body)
	}
	var env api.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Code != api.CodeTooLarge {
		t.Errorf("413 envelope = %s", body)
	}
}
