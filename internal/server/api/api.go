// Package api holds the response conventions of the versioned /v1 HTTP
// surface: the typed error envelope, small-object and streaming list
// encoders, the uniform pagination layer (limit/offset plus opaque-cursor),
// and the deprecation headers. Handlers in internal/server are built on
// these helpers so every endpoint — existing or new — speaks the same
// dialect by construction.
package api

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// Error codes of the v1 envelope. Every non-2xx response carries
// {"error": {"code": <one of these>, "message": <human text>}} so clients
// can branch on the code without parsing prose.
const (
	CodeBadRequest  = "bad_request"  // malformed parameter or body (400)
	CodeNotFound    = "not_found"    // unknown year, pair, record, household (404)
	CodeConflict    = "conflict"     // ingest of a year the series already has (409)
	CodeGone        = "gone"         // cursor minted against an earlier series version (410)
	CodeTooLarge    = "too_large"    // ingest body above the configured cap (413)
	CodeTimeout     = "timeout"      // computation exceeded its deadline (504)
	CodeUnavailable = "unavailable"  // computation cancelled / server draining (503)
	CodeOverloaded  = "overloaded"   // shed by the in-flight cap (503)
	CodeRateLimited = "rate_limited" // shed by the per-client token bucket (429)
	CodeInternal    = "internal"     // anything else (500)
)

// StatusClientClosedRequest is nginx's non-standard 499: the requester went
// away before a response was written. No body accompanies it — nobody is
// left to read one — but the code keeps client disconnects distinguishable
// from genuine 5xx in the per-endpoint response counters.
const StatusClientClosedRequest = 499

// ErrorEnvelope is the uniform error body of the v1 API.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// ErrorBody carries the machine-readable code and the human message.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// WriteJSON renders a small, non-list response body. The value is encoded
// to a buffer first, so a marshal failure becomes a clean 500 envelope —
// the status is never committed before the body is known good.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		status = http.StatusInternalServerError
		data, _ = json.Marshal(ErrorEnvelope{Error: ErrorBody{
			Code: CodeInternal, Message: "response encoding failed: " + err.Error()}})
	}
	data = append(data, '\n')
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(status)
	_, _ = w.Write(data)
}

// Error writes the uniform error envelope.
func Error(w http.ResponseWriter, status int, code, message string) {
	WriteJSON(w, status, ErrorEnvelope{Error: ErrorBody{Code: code, Message: message}})
}

// Err is a ready-to-send API error: status plus envelope fields. Helpers
// that can fail in more than one way (pagination: 400 vs 410) return it so
// the handler stays a one-liner.
type Err struct {
	Status  int
	Code    string
	Message string
}

func (e *Err) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// Write sends the error to the client.
func (e *Err) Write(w http.ResponseWriter) { Error(w, e.Status, e.Code, e.Message) }

// Field is one scalar member of a list response's envelope.
type Field struct {
	Name  string
	Value any
}

// WriteList streams a list-shaped response: the envelope fields are
// marshalled up front — any encoding error there still becomes a clean 500
// — then the page's items are encoded one at a time through a buffered
// writer, so the response is never materialized as one whole byte slice. An
// item that fails to encode after the header is out cannot be unsent;
// onEncodeError is called (the server counts it on /metrics) and the
// connection aborted, so the client sees a broken transfer instead of a
// clean 200 with a truncated body.
func WriteList(w http.ResponseWriter, status int, fields []Field, listName string, n int, item func(int) any, onEncodeError func()) {
	var head bytes.Buffer
	head.WriteByte('{')
	for _, f := range fields {
		data, err := json.Marshal(f.Value)
		if err != nil {
			Error(w, http.StatusInternalServerError, CodeInternal,
				fmt.Sprintf("response encoding failed on %q: %v", f.Name, err))
			return
		}
		key, _ := json.Marshal(f.Name)
		head.Write(key)
		head.WriteByte(':')
		head.Write(data)
		head.WriteByte(',')
	}
	key, _ := json.Marshal(listName)
	head.Write(key)
	head.WriteString(":[")

	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	bw := bufio.NewWriterSize(w, 16<<10)
	_, _ = bw.Write(head.Bytes())
	for i := 0; i < n; i++ {
		data, err := json.Marshal(item(i))
		if err != nil {
			if onEncodeError != nil {
				onEncodeError()
			}
			panic(http.ErrAbortHandler)
		}
		if i > 0 {
			_ = bw.WriteByte(',')
		}
		_, _ = bw.Write(data)
	}
	_, _ = bw.WriteString("]}\n")
	_ = bw.Flush() // a flush error means the client is gone; nothing to do
}

// Deprecated stamps a response as served by a deprecated path: a
// Deprecation header (RFC 9745) and a Link header naming the successor, so
// clients learn where to migrate without breaking today.
func Deprecated(w http.ResponseWriter, successor string) {
	w.Header().Set("Deprecation", "true")
	w.Header().Set("Link", fmt.Sprintf("<%s>; rel=%q", successor, "successor-version"))
}

// Page describes the window a list-shaped response covers: the requested
// limit/offset, the total number of items after filtering, how many of them
// this response carries, and — when the request paginated by cursor — the
// opaque token of the next page (absent on the last page).
type Page struct {
	Limit      int    `json:"limit"`
	Offset     int    `json:"offset"`
	Total      int    `json:"total"`
	Returned   int    `json:"returned"`
	NextCursor string `json:"next_cursor,omitempty"`
}

const (
	defaultPageLimit = 100
	maxPageLimit     = 1000
)

// PageParams is a parsed pagination request. ByCursor records whether the
// client paginated with ?cursor= — those responses carry a NextCursor token
// and their position survives basis checks, while plain offsets are
// deprecated for feed-like reads (the series can grow under them).
type PageParams struct {
	Limit    int
	Offset   int
	ByCursor bool
}

// ParsePage parses the uniform pagination parameters: ?limit= plus either
// ?offset= (the historical form) or ?cursor= (an opaque token minted by a
// previous response; a bare ?cursor= with no value opts in to cursor
// pagination from the first page). The two are mutually exclusive. basis is
// the resource's content basis (the same string later passed to PageOf): a
// cursor minted against a different basis — the series changed under the
// listing — fails with 410 gone, so clients restart from the top instead of
// silently skipping or repeating items.
func ParsePage(r *http.Request, basis string) (PageParams, *Err) {
	p := PageParams{Limit: defaultPageLimit}
	q := r.URL.Query()
	if v := q.Get("limit"); v != "" {
		n, e := strconv.Atoi(v)
		if e != nil || n < 1 || n > maxPageLimit {
			return p, &Err{http.StatusBadRequest, CodeBadRequest,
				fmt.Sprintf("bad limit %q: want an integer in 1..%d", v, maxPageLimit)}
		}
		p.Limit = n
	}
	hasCursor := q.Has("cursor")
	if v := q.Get("offset"); v != "" {
		if hasCursor {
			return p, &Err{http.StatusBadRequest, CodeBadRequest,
				"offset and cursor are mutually exclusive"}
		}
		n, e := strconv.Atoi(v)
		if e != nil || n < 0 {
			return p, &Err{http.StatusBadRequest, CodeBadRequest,
				fmt.Sprintf("bad offset %q: want an integer >= 0", v)}
		}
		p.Offset = n
	}
	if hasCursor {
		p.ByCursor = true
		if cursor := q.Get("cursor"); cursor != "" {
			cb, off, err := DecodeCursor(cursor)
			if err != nil {
				return p, &Err{http.StatusBadRequest, CodeBadRequest,
					fmt.Sprintf("bad cursor: %v", err)}
			}
			if cb != basis {
				return p, &Err{http.StatusGone, CodeGone,
					"cursor was minted against an earlier version of this resource; restart from the first page"}
			}
			p.Offset = off
		}
	}
	return p, nil
}

// cursorPayload is the decoded form of the opaque token.
type cursorPayload struct {
	Basis  string `json:"b"`
	Offset int    `json:"o"`
}

// EncodeCursor mints the opaque token for position offset of a resource
// with the given content basis.
func EncodeCursor(basis string, offset int) string {
	data, _ := json.Marshal(cursorPayload{Basis: basis, Offset: offset})
	return base64.RawURLEncoding.EncodeToString(data)
}

// DecodeCursor unpacks an opaque token into its basis and offset.
func DecodeCursor(token string) (basis string, offset int, err error) {
	data, err := base64.RawURLEncoding.DecodeString(token)
	if err != nil {
		return "", 0, fmt.Errorf("not a cursor token")
	}
	var p cursorPayload
	if err := json.Unmarshal(data, &p); err != nil || p.Offset < 0 {
		return "", 0, fmt.Errorf("not a cursor token")
	}
	return p.Basis, p.Offset, nil
}

// Window collects the [offset, offset+limit) page of a filtered sequence
// without materializing the rest: feed every passing item to Add, then read
// the Items slice and page descriptor. Only up to limit items are ever kept.
type Window[T any] struct {
	params PageParams
	total  int
	Items  []T
}

// NewWindow builds a page window for the parsed parameters.
func NewWindow[T any](p PageParams) *Window[T] {
	return &Window[T]{params: p}
}

// Add admits one item that passed the handler's filters.
func (w *Window[T]) Add(v T) {
	if w.total >= w.params.Offset && len(w.Items) < w.params.Limit {
		w.Items = append(w.Items, v)
	}
	w.total++
}

// PageOf returns the filled page descriptor. basis must be the same string
// the handler passed to ParsePage; when the request paginated by cursor and
// more items remain, the descriptor carries the next page's token.
func (w *Window[T]) PageOf(basis string) Page {
	p := Page{
		Limit:    w.params.Limit,
		Offset:   w.params.Offset,
		Total:    w.total,
		Returned: len(w.Items),
	}
	if w.params.ByCursor {
		if next := w.params.Offset + len(w.Items); next < w.total {
			p.NextCursor = EncodeCursor(basis, next)
		}
	}
	return p
}

// CanonicalURL renders the request path with the query parameters in sorted
// order, so ?limit=2&offset=1 and ?offset=1&limit=2 share one validator.
func CanonicalURL(r *http.Request) string {
	return r.URL.Path + "?" + r.URL.Query().Encode()
}

// ETagMatches implements the If-None-Match comparison of RFC 9110 §13.1.2:
// a comma-separated list of entity tags, compared weakly (a W/ prefix on
// the client's copy still matches our strong tag), or the wildcard *.
func ETagMatches(header, etag string) bool {
	for _, c := range strings.Split(header, ",") {
		c = strings.TrimSpace(c)
		if c == "*" {
			return true
		}
		c = strings.TrimPrefix(c, "W/")
		if c != "" && c == etag {
			return true
		}
	}
	return false
}

// NotModified stamps the response with the resource's ETag and, when the
// request's If-None-Match matches it, short-circuits with 304 Not Modified
// and reports true — the caller sends no body. Cache-Control: no-cache
// makes intermediaries revalidate on every use: the validator of every
// resource changes when a new census year is ingested, so a revalidation
// after an ingest refetches a fresh body.
func NotModified(w http.ResponseWriter, r *http.Request, etag string) bool {
	h := w.Header()
	h.Set("ETag", etag)
	h.Set("Cache-Control", "no-cache")
	if !ETagMatches(r.Header.Get("If-None-Match"), etag) {
		return false
	}
	w.WriteHeader(http.StatusNotModified)
	return true
}
