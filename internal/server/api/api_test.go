package api

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestCursorRoundTrip(t *testing.T) {
	token := EncodeCursor("basis-1", 42)
	basis, off, err := DecodeCursor(token)
	if err != nil {
		t.Fatal(err)
	}
	if basis != "basis-1" || off != 42 {
		t.Fatalf("decoded (%q, %d), want (basis-1, 42)", basis, off)
	}
	if _, _, err := DecodeCursor("!!!not-base64!!!"); err == nil {
		t.Error("garbage token decoded without error")
	}
	if _, _, err := DecodeCursor(""); err == nil {
		t.Error("empty token decoded without error")
	}
}

func TestParsePage(t *testing.T) {
	get := func(query string) *http.Request {
		return httptest.NewRequest("GET", "/v1/list"+query, nil)
	}
	// Defaults.
	p, apiErr := ParsePage(get(""), "b")
	if apiErr != nil || p.Limit != defaultPageLimit || p.Offset != 0 || p.ByCursor {
		t.Fatalf("defaults: %+v, %v", p, apiErr)
	}
	// Offset form.
	p, apiErr = ParsePage(get("?limit=5&offset=10"), "b")
	if apiErr != nil || p.Limit != 5 || p.Offset != 10 || p.ByCursor {
		t.Fatalf("offset form: %+v, %v", p, apiErr)
	}
	// Cursor form resumes at the encoded offset.
	p, apiErr = ParsePage(get("?cursor="+EncodeCursor("b", 7)), "b")
	if apiErr != nil || p.Offset != 7 || !p.ByCursor {
		t.Fatalf("cursor form: %+v, %v", p, apiErr)
	}
	// A bare ?cursor= opts in from the first page.
	p, apiErr = ParsePage(get("?cursor="), "b")
	if apiErr != nil || p.Offset != 0 || !p.ByCursor {
		t.Fatalf("bare cursor opt-in: %+v, %v", p, apiErr)
	}
	// Stale basis: 410 gone.
	if _, apiErr = ParsePage(get("?cursor="+EncodeCursor("old-basis", 7)), "b"); apiErr == nil ||
		apiErr.Status != http.StatusGone || apiErr.Code != CodeGone {
		t.Fatalf("stale cursor: %v, want 410 gone", apiErr)
	}
	// Malformed inputs: 400.
	for _, q := range []string{"?limit=0", "?limit=9999", "?offset=-1", "?cursor=zzz", "?offset=1&cursor=" + EncodeCursor("b", 1)} {
		if _, apiErr = ParsePage(get(q), "b"); apiErr == nil || apiErr.Status != http.StatusBadRequest {
			t.Errorf("%s: %v, want 400", q, apiErr)
		}
	}
}

// TestWindowCursorCoverage pages through a sequence by cursor and checks the
// pages tile it exactly: no item skipped, none repeated, no token on the
// last page.
func TestWindowCursorCoverage(t *testing.T) {
	const total, limit = 23, 5
	var got []int
	params := PageParams{Limit: limit, ByCursor: true}
	for page := 0; ; page++ {
		w := NewWindow[int](params)
		for i := 0; i < total; i++ {
			w.Add(i)
		}
		got = append(got, w.Items...)
		desc := w.PageOf("b")
		if desc.Total != total {
			t.Fatalf("page %d: total %d, want %d", page, desc.Total, total)
		}
		if desc.NextCursor == "" {
			break
		}
		_, off, err := DecodeCursor(desc.NextCursor)
		if err != nil {
			t.Fatal(err)
		}
		params = PageParams{Limit: limit, Offset: off, ByCursor: true}
		if page > total {
			t.Fatal("cursor chain does not terminate")
		}
	}
	if len(got) != total {
		t.Fatalf("paged %d items, want %d", len(got), total)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("item %d = %d: pages skipped or repeated", i, v)
		}
	}
}

func TestWindowOffsetNoCursor(t *testing.T) {
	w := NewWindow[int](PageParams{Limit: 2, Offset: 0})
	for i := 0; i < 5; i++ {
		w.Add(i)
	}
	if desc := w.PageOf("b"); desc.NextCursor != "" {
		t.Errorf("offset pagination minted a cursor: %q", desc.NextCursor)
	}
}

func TestWriteListStreams(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteList(rec, http.StatusOK, []Field{{"year", 1881}}, "items", 3,
		func(i int) any { return i * 10 }, nil)
	var body struct {
		Year  int   `json:"year"`
		Items []int `json:"items"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad body %q: %v", rec.Body.String(), err)
	}
	if body.Year != 1881 || len(body.Items) != 3 || body.Items[2] != 20 {
		t.Fatalf("body = %+v", body)
	}
}

func TestWriteListEncodeErrorAborts(t *testing.T) {
	rec := httptest.NewRecorder()
	counted := false
	func() {
		defer func() {
			if r := recover(); r != http.ErrAbortHandler {
				t.Fatalf("recover() = %v, want http.ErrAbortHandler", r)
			}
		}()
		WriteList(rec, http.StatusOK, nil, "items", 1,
			func(i int) any { return func() {} }, // unmarshalable
			func() { counted = true })
	}()
	if !counted {
		t.Error("encode-error callback not invoked")
	}
}

func TestDeprecatedHeaders(t *testing.T) {
	rec := httptest.NewRecorder()
	Deprecated(rec, "/v1/years")
	if rec.Header().Get("Deprecation") != "true" {
		t.Error("no Deprecation header")
	}
	if link := rec.Header().Get("Link"); !strings.Contains(link, "/v1/years") ||
		!strings.Contains(link, "successor-version") {
		t.Errorf("Link = %q", link)
	}
}

func TestErrorEnvelope(t *testing.T) {
	rec := httptest.NewRecorder()
	Error(rec, http.StatusConflict, CodeConflict, "year 1901 already present")
	if rec.Code != http.StatusConflict {
		t.Fatalf("status %d", rec.Code)
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != CodeConflict {
		t.Errorf("code %q", env.Error.Code)
	}
}
