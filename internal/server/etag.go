package server

import (
	"crypto/sha256"
	"encoding/hex"
	"io"
	"net/http"
	"strings"
)

// Linkage results are immutable: every pair's output is a pure function of
// (configuration, old dataset, new dataset), which is exactly the content
// address the snapshot store files results under. That makes strong ETags
// free — hash the address plus the canonical request URL, no result bytes
// needed — and a conditional revalidation can answer 304 without even
// touching the cache, let alone recomputing the pair.

// etagSurface salts every ETag with the version of the JSON representation.
// Bump it whenever a response shape changes, so clients holding ETags from
// an older build revalidate to fresh bodies instead of keeping stale shapes.
const etagSurface = "v1.1"

// pairETag is the strong validator of a pair-scoped resource: the content
// address of pair i (config fingerprint + both dataset hashes) plus the
// canonical request URL, so every filter/page window validates separately.
func (s *Server) pairETag(i int, r *http.Request) string {
	pair := s.series.Pairs()[i]
	return makeETag(etagSurface, s.cfgHash,
		pair[0].ContentHash(), pair[1].ContentHash(), canonicalURL(r))
}

// seriesETag is the validator of series-wide resources (years, timelines,
// lifecycles, household timelines): it covers every dataset's content hash,
// since those responses derive from the whole evolution graph.
func (s *Server) seriesETag(r *http.Request) string {
	parts := make([]string, 0, len(s.series.Datasets)+3)
	parts = append(parts, etagSurface, s.cfgHash)
	for _, d := range s.series.Datasets {
		parts = append(parts, d.ContentHash())
	}
	parts = append(parts, canonicalURL(r))
	return makeETag(parts...)
}

// makeETag hashes the NUL-separated parts into a strong entity tag.
func makeETag(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		io.WriteString(h, p)
		h.Write([]byte{0})
	}
	return `"` + hex.EncodeToString(h.Sum(nil))[:32] + `"`
}

// canonicalURL renders the request path with the query parameters in sorted
// order, so ?limit=2&offset=1 and ?offset=1&limit=2 share one validator.
func canonicalURL(r *http.Request) string {
	return r.URL.Path + "?" + r.URL.Query().Encode()
}

// notModified stamps the response with the resource's ETag and, when the
// request's If-None-Match matches it, short-circuits with 304 Not Modified
// and reports true — the caller sends no body. Cache-Control: no-cache
// makes intermediaries revalidate on every use: the data at a given address
// never changes, but the same URL can serve a different series after a
// restart.
func notModified(w http.ResponseWriter, r *http.Request, etag string) bool {
	h := w.Header()
	h.Set("ETag", etag)
	h.Set("Cache-Control", "no-cache")
	if !etagMatches(r.Header.Get("If-None-Match"), etag) {
		return false
	}
	w.WriteHeader(http.StatusNotModified)
	return true
}

// etagMatches implements the If-None-Match comparison of RFC 9110 §13.1.2:
// a comma-separated list of entity tags, compared weakly (a W/ prefix on
// the client's copy still matches our strong tag), or the wildcard *.
func etagMatches(header, etag string) bool {
	for _, c := range strings.Split(header, ",") {
		c = strings.TrimSpace(c)
		if c == "*" {
			return true
		}
		c = strings.TrimPrefix(c, "W/")
		if c != "" && c == etag {
			return true
		}
	}
	return false
}
