package server

import (
	"crypto/sha256"
	"encoding/hex"
	"io"
	"net/http"

	"censuslink/internal/server/api"
)

// Linkage results are immutable: every pair's output is a pure function of
// (configuration, old dataset, new dataset), which is exactly the content
// address the snapshot store files results under. That makes strong ETags
// free — hash the address plus the canonical request URL, no result bytes
// needed — and a conditional revalidation can answer 304 without even
// touching the cache, let alone recomputing the pair.
//
// Every validator additionally hashes the current series fingerprint, so
// ingesting a new census year (POST /v1/census) invalidates the whole ETag
// surface at once: after an ingest, a conditional GET on ANY endpoint —
// including a pair whose own data did not change — revalidates to a fresh
// 200 body, and clients see one consistent series version rather than a mix
// of pre- and post-ingest responses.

// etagSurface salts every ETag with the version of the JSON representation.
// Bump it whenever a response shape changes, so clients holding ETags from
// an older build revalidate to fresh bodies instead of keeping stale shapes.
const etagSurface = "v1.2"

// pairETag is the strong validator of a pair-scoped resource: the content
// address of pair i (config fingerprint + both dataset hashes), the series
// fingerprint, and the canonical request URL, so every filter/page window
// validates separately.
func (s *Server) pairETag(st *seriesState, i int, r *http.Request) string {
	pair := st.series.Pairs()[i]
	return makeETag(etagSurface, s.cfgHash, st.seriesHash,
		pair[0].ContentHash(), pair[1].ContentHash(), api.CanonicalURL(r))
}

// seriesETag is the validator of series-wide resources (years, timelines,
// lifecycles, household timelines): it covers every dataset's content hash
// through the series fingerprint, since those responses derive from the
// whole evolution graph.
func (s *Server) seriesETag(st *seriesState, r *http.Request) string {
	return makeETag(etagSurface, s.cfgHash, st.seriesHash, api.CanonicalURL(r))
}

// pairBasis is the pagination basis of a pair-scoped listing: cursors stay
// valid as long as the pair's content and the filter set are unchanged —
// they survive ingests of later years, because an append cannot alter an
// already-linked pair.
func (s *Server) pairBasis(st *seriesState, i int, r *http.Request, filters ...string) string {
	pair := st.series.Pairs()[i]
	parts := append([]string{"cursor", s.cfgHash,
		pair[0].ContentHash(), pair[1].ContentHash(), r.URL.Path}, filters...)
	return makeETag(parts...)
}

// seriesBasis is the pagination basis of a series-wide listing: an ingest
// changes the series fingerprint, so cursors minted before it fail with
// 410 gone instead of silently skipping or repeating items of the grown
// feed.
func (s *Server) seriesBasis(st *seriesState, r *http.Request, filters ...string) string {
	parts := append([]string{"cursor", s.cfgHash, st.seriesHash, r.URL.Path}, filters...)
	return makeETag(parts...)
}

// makeETag hashes the NUL-separated parts into a strong entity tag.
func makeETag(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		io.WriteString(h, p)
		h.Write([]byte{0})
	}
	return `"` + hex.EncodeToString(h.Sum(nil))[:32] + `"`
}
