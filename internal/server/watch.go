package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"censuslink/internal/server/api"
)

// The change feed: every ingested census year publishes a versioned event
// stream — one census_ingested summary followed by the household lifecycle
// transitions of the new pair in bounded batches — to whoever is watching.
// GET /v1/evolution/watch serves it as Server-Sent Events by default, with
// a JSON long-poll fallback (?mode=poll) for clients that cannot hold a
// stream open. Event IDs are monotonic per server lifetime; a reconnecting
// SSE client presents Last-Event-ID and resumes from the retained suffix of
// the feed (WatchBuffer events deep), and the SSE `retry:` hint plus the
// ring buffer make the reconnect loop lossless as long as the client is not
// further behind than the buffer.

// watchEventSchema versions the event payloads; bump when their shape
// changes so consumers can dispatch on it.
const watchEventSchema = 1

// transitionBatchSize bounds one transitions event's payload; a census pair
// with tens of thousands of households becomes a sequence of digestible
// frames instead of one multi-megabyte SSE line.
const transitionBatchSize = 500

// watchEvent is one published change-feed entry: a monotonically increasing
// ID, the SSE event name, and the marshalled payload (encoded once, fanned
// out to every subscriber).
type watchEvent struct {
	ID   uint64
	Name string
	Data []byte
}

// subscriberBuffer is each subscriber's private channel depth; a consumer
// that falls this far behind while the hub holds its lock is evicted rather
// than allowed to stall the feed for everyone else.
const subscriberBuffer = 64

type watchSub struct {
	ch chan watchEvent
	// evicted is set (under the hub lock) when the subscriber's channel
	// overflowed and the hub dropped it; the serving goroutine translates it
	// into closing the stream so the client reconnects with Last-Event-ID.
	evicted bool
}

// watchHub fans change-feed events out to subscribers and retains a ring of
// recent events for Last-Event-ID replay.
type watchHub struct {
	mu      sync.Mutex
	ring    []watchEvent // last ringCap events, oldest first
	ringCap int
	nextID  uint64
	subs    map[*watchSub]struct{}

	published uint64
	evictions uint64
}

func newWatchHub(ringCap int) *watchHub {
	if ringCap <= 0 {
		ringCap = 1024
	}
	return &watchHub{ringCap: ringCap, nextID: 1, subs: make(map[*watchSub]struct{})}
}

// publish marshals the payload once, assigns the next event ID, retains the
// event in the replay ring and fans it out. A subscriber whose channel is
// full is evicted on the spot: the hub never blocks on a slow consumer.
func (h *watchHub) publish(name string, payload any) uint64 {
	data, err := json.Marshal(payload)
	if err != nil {
		// Payloads are our own structs; a marshal failure is a programming
		// error. Publish the error itself so watchers at least see the gap.
		data = []byte(fmt.Sprintf(`{"schema":%d,"type":"error","message":%q}`, watchEventSchema, err.Error()))
	}
	h.mu.Lock()
	ev := watchEvent{ID: h.nextID, Name: name, Data: data}
	h.nextID++
	h.published++
	if len(h.ring) == h.ringCap {
		copy(h.ring, h.ring[1:])
		h.ring[len(h.ring)-1] = ev
	} else {
		h.ring = append(h.ring, ev)
	}
	for sub := range h.subs {
		select {
		case sub.ch <- ev:
		default:
			sub.evicted = true
			delete(h.subs, sub)
			close(sub.ch)
			h.evictions++
		}
	}
	h.mu.Unlock()
	return ev.ID
}

// subscribe registers a new consumer and returns the retained events after
// the given ID (0: none — only new events). The caller must unsubscribe.
// Backlog and registration happen under one lock acquisition, so no event
// can fall between the replayed suffix and the live channel.
func (h *watchHub) subscribe(after uint64) (*watchSub, []watchEvent) {
	sub := &watchSub{ch: make(chan watchEvent, subscriberBuffer)}
	h.mu.Lock()
	var backlog []watchEvent
	for _, ev := range h.ring {
		if ev.ID > after {
			backlog = append(backlog, ev)
		}
	}
	h.subs[sub] = struct{}{}
	h.mu.Unlock()
	return sub, backlog
}

func (h *watchHub) unsubscribe(sub *watchSub) {
	h.mu.Lock()
	if _, ok := h.subs[sub]; ok {
		delete(h.subs, sub)
		close(sub.ch)
	}
	h.mu.Unlock()
}

// eventsAfter returns the retained events with ID greater than after (the
// long-poll read path).
func (h *watchHub) eventsAfter(after uint64) []watchEvent {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []watchEvent
	for _, ev := range h.ring {
		if ev.ID > after {
			out = append(out, ev)
		}
	}
	return out
}

// lastID returns the highest published event ID (0 when none yet).
func (h *watchHub) lastID() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.nextID - 1
}

func (h *watchHub) metrics() (subscribers int, published, evictions uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs), h.published, h.evictions
}

// ingestEventJSON is the census_ingested summary event: one per ingest,
// first on the wire, carrying the new series shape and the new pair's
// headline numbers.
type ingestEventJSON struct {
	Schema      int            `json:"schema"`
	Type        string         `json:"type"`
	Year        int            `json:"year"`
	OldYear     int            `json:"old_year"`
	Generation  uint64         `json:"generation"`
	Years       []int          `json:"years"`
	RecordLinks int            `json:"record_links"`
	GroupLinks  int            `json:"group_links"`
	Counts      map[string]int `json:"counts"`
}

// transitionsEventJSON carries one batch of the new pair's household
// lifecycle transitions (the typed pattern events of Section 4.1).
type transitionsEventJSON struct {
	Schema      int                `json:"schema"`
	Type        string             `json:"type"`
	OldYear     int                `json:"old_year"`
	NewYear     int                `json:"new_year"`
	Generation  uint64             `json:"generation"`
	Batch       int                `json:"batch"`
	Batches     int                `json:"batches"`
	Transitions []patternEventJSON `json:"transitions"`
}

// handleWatch serves the change feed. Default: an SSE stream that replays
// retained events after Last-Event-ID (header, or ?last_event_id= for
// clients that cannot set headers) and then follows the live feed, with
// periodic comment heartbeats so dead connections are noticed. Fallback:
// ?mode=poll returns the retained events after ?after=N as one JSON
// response, waiting up to ?wait= (default 0, max 55s) for the first event
// when none are pending — a poll loop over it observes the same IDs in the
// same order as the stream.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("mode") == "poll" {
		s.handleWatchPoll(w, r)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		api.Error(w, http.StatusInternalServerError, api.CodeInternal,
			"response writer does not support streaming")
		return
	}
	after, apiErr := watchResumePoint(r)
	if apiErr != nil {
		apiErr.Write(w)
		return
	}
	sub, backlog := s.watch.subscribe(after)
	defer s.watch.unsubscribe(sub)

	// An SSE stream outlives any sane server write timeout; clear the
	// deadline for this connection only. Dead peers are still noticed: the
	// heartbeat write fails once the kernel buffers fill. Ignore the error —
	// a recorder or exotic wrapper without deadline support just keeps the
	// global timeout.
	_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // proxies must not buffer the stream
	w.WriteHeader(http.StatusOK)
	// Reconnect hint: with Last-Event-ID resume, a 2s retry loop is lossless
	// while the client stays within the replay ring.
	fmt.Fprintf(w, "retry: 2000\n\n")
	for _, ev := range backlog {
		writeSSE(w, ev)
	}
	flusher.Flush()

	heartbeat := time.NewTicker(s.watchHeartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case ev, open := <-sub.ch:
			if !open {
				// Evicted: close the stream; the client reconnects with
				// Last-Event-ID and replays what it missed from the ring.
				return
			}
			writeSSE(w, ev)
			if !drainPending(w, sub) {
				return
			}
			flusher.Flush()
		case <-heartbeat.C:
			fmt.Fprintf(w, ": ping\n\n")
			flusher.Flush()
		case <-r.Context().Done():
			return
		case <-s.baseCtx.Done():
			return
		}
	}
}

// drainPending writes whatever else is already queued on the subscriber's
// channel (so one flush covers a burst); it reports false when the channel
// was closed by an eviction.
func drainPending(w http.ResponseWriter, sub *watchSub) bool {
	for {
		select {
		case ev, open := <-sub.ch:
			if !open {
				return false
			}
			writeSSE(w, ev)
		default:
			return true
		}
	}
}

// watchResumePoint reads the SSE resume position: the Last-Event-ID header
// (standard EventSource reconnect) or ?last_event_id=.
func watchResumePoint(r *http.Request) (uint64, *api.Err) {
	v := r.Header.Get("Last-Event-ID")
	if q := r.URL.Query().Get("last_event_id"); q != "" {
		v = q
	}
	if v == "" {
		return 0, nil
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, &api.Err{Status: http.StatusBadRequest, Code: api.CodeBadRequest,
			Message: fmt.Sprintf("bad event id %q: want an unsigned integer", v)}
	}
	return n, nil
}

func writeSSE(w http.ResponseWriter, ev watchEvent) {
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.ID, ev.Name, ev.Data)
}

// handleWatchPoll is the long-poll fallback: GET /v1/evolution/watch?mode=poll
// &after=N[&wait=5s]. It answers immediately with the retained events after
// N; when there are none and wait > 0, it parks until the next publish (or
// the wait expires) so a poll loop is push-like without holding a stream.
func (s *Server) handleWatchPoll(w http.ResponseWriter, r *http.Request) {
	var after uint64
	if v := r.URL.Query().Get("after"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			api.Error(w, http.StatusBadRequest, api.CodeBadRequest,
				fmt.Sprintf("bad after %q: want an unsigned integer", v))
			return
		}
		after = n
	}
	var wait time.Duration
	if v := r.URL.Query().Get("wait"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			api.Error(w, http.StatusBadRequest, api.CodeBadRequest,
				fmt.Sprintf("bad wait %q: want a duration like 5s", v))
			return
		}
		if d > 55*time.Second {
			d = 55 * time.Second // stay under common proxy idle timeouts
		}
		wait = d
	}
	events := s.watch.eventsAfter(after)
	if len(events) == 0 && wait > 0 {
		sub, backlog := s.watch.subscribe(after)
		events = backlog // published between the two reads
		if len(events) == 0 {
			timer := time.NewTimer(wait)
			select {
			case ev, open := <-sub.ch:
				if open {
					events = append(events, ev)
				}
			case <-timer.C:
			case <-r.Context().Done():
			case <-s.baseCtx.Done():
			}
			timer.Stop()
		}
		s.watch.unsubscribe(sub)
	}
	type eventJSON struct {
		ID    uint64          `json:"id"`
		Event string          `json:"event"`
		Data  json.RawMessage `json:"data"`
	}
	out := make([]eventJSON, 0, len(events))
	lastID := after
	for _, ev := range events {
		out = append(out, eventJSON{ID: ev.ID, Event: ev.Name, Data: ev.Data})
		lastID = ev.ID
	}
	api.WriteJSON(w, http.StatusOK, map[string]any{
		"events":  out,
		"last_id": lastID,
	})
}
