package server

import (
	"net/http"
	"strings"

	"censuslink/internal/server/api"
)

// GET /v1/openapi.json: the machine-readable description of this surface,
// generated from the same route registry the mux is built from — the
// document cannot drift from the handlers because both are projections of
// one table. cmd/loadgen discovers the endpoint mix from it, and new routes
// appear in the document by being registered, not by editing a spec.

// openAPIVersion is the info.version of the generated document; bump it
// with etagSurface when the response shapes change.
const openAPIVersion = "1.2.0"

func (s *Server) handleOpenAPI(w http.ResponseWriter, r *http.Request) {
	st := s.cur()
	if api.NotModified(w, r, s.seriesETag(st, r)) {
		return
	}
	type obj = map[string]any

	paths := obj{}
	for _, rt := range s.apiRoutes {
		params := make([]obj, 0, len(rt.params)+3)
		docs := rt.params
		if rt.paginated {
			docs = append(append([]paramDoc{}, docs...), pageParamDocs...)
		}
		for _, p := range docs {
			pd := obj{
				"name":        p.name,
				"in":          p.in,
				"description": p.desc,
				"schema":      obj{"type": p.typ},
			}
			if p.required || p.in == "path" {
				pd["required"] = true
			}
			if p.name == "offset" {
				pd["deprecated"] = true
			}
			params = append(params, pd)
		}
		op := obj{
			"operationId": rt.name,
			"summary":     rt.summary,
			"responses": obj{
				"default": obj{"description": "JSON body; errors use the envelope {\"error\": {\"code\", \"message\"}}"},
			},
		}
		if len(params) > 0 {
			op["parameters"] = params
		}
		if rt.streaming {
			op["x-streaming"] = true
			op["responses"] = obj{
				"200": obj{"description": "text/event-stream (SSE) by default; application/json with ?mode=poll"},
			}
		}
		if rt.paginated {
			op["x-paginated"] = true
		}
		p := "/v1" + rt.path
		ops, _ := paths[p].(obj)
		if ops == nil {
			ops = obj{}
			paths[p] = ops
		}
		ops[strings.ToLower(rt.method)] = op
	}

	doc := obj{
		"openapi": "3.0.3",
		"info": obj{
			"title":       "censuslink",
			"description": "Temporal census linkage and household evolution query service.",
			"version":     openAPIVersion,
		},
		"paths": paths,
		"x-series": obj{
			"years":      st.series.Years(),
			"generation": st.gen,
		},
	}
	api.WriteJSON(w, http.StatusOK, doc)
}
