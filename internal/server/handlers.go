package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"

	"censuslink/internal/evolution"
	"censuslink/internal/linkage"
)

// Error codes of the v1 envelope. Every non-2xx response carries
// {"error": {"code": <one of these>, "message": <human text>}} so clients
// can branch on the code without parsing prose.
const (
	codeBadRequest  = "bad_request"  // malformed parameter (400)
	codeNotFound    = "not_found"    // unknown year, pair, record, household (404)
	codeTimeout     = "timeout"      // computation exceeded its deadline (504)
	codeUnavailable = "unavailable"  // computation cancelled / server draining (503)
	codeInternal    = "internal"     // anything else (500)
)

// writeJSON renders a response body; encoding errors after the header is
// out are unrecoverable and ignored.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorJSON is the uniform error envelope of the v1 API.
type errorJSON struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// apiError writes the uniform error envelope.
func apiError(w http.ResponseWriter, status int, code, message string) {
	writeJSON(w, status, errorJSON{Error: errorBody{Code: code, Message: message}})
}

// fail maps a computation error to an HTTP status and error code: deadline
// overruns are gateway timeouts, cancellations (client gone, server
// draining) are service-unavailable, anything else is a plain 500.
func fail(w http.ResponseWriter, err error) {
	status, code := http.StatusInternalServerError, codeInternal
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		status, code = http.StatusGatewayTimeout, codeTimeout
	case errors.Is(err, context.Canceled):
		status, code = http.StatusServiceUnavailable, codeUnavailable
	}
	apiError(w, status, code, err.Error())
}

// pageJSON describes the window a list-shaped response covers: the
// requested limit/offset, the total number of items after filtering, and
// how many of them this response carries.
type pageJSON struct {
	Limit    int `json:"limit"`
	Offset   int `json:"offset"`
	Total    int `json:"total"`
	Returned int `json:"returned"`
}

const (
	defaultPageLimit = 100
	maxPageLimit     = 1000
)

// pageParams parses the uniform ?limit= / ?offset= pagination parameters.
func pageParams(r *http.Request) (limit, offset int, err error) {
	limit = defaultPageLimit
	if v := r.URL.Query().Get("limit"); v != "" {
		n, e := strconv.Atoi(v)
		if e != nil || n < 1 || n > maxPageLimit {
			return 0, 0, fmt.Errorf("bad limit %q: want an integer in 1..%d", v, maxPageLimit)
		}
		limit = n
	}
	if v := r.URL.Query().Get("offset"); v != "" {
		n, e := strconv.Atoi(v)
		if e != nil || n < 0 {
			return 0, 0, fmt.Errorf("bad offset %q: want an integer >= 0", v)
		}
		offset = n
	}
	return limit, offset, nil
}

// pageWindow clamps the [offset, offset+limit) window to a list of total
// items and returns the slice bounds plus the filled page descriptor.
func pageWindow(total, limit, offset int) (lo, hi int, page pageJSON) {
	lo = offset
	if lo > total {
		lo = total
	}
	hi = lo + limit
	if hi > total {
		hi = total
	}
	return lo, hi, pageJSON{Limit: limit, Offset: offset, Total: total, Returned: hi - lo}
}

// pairIndex resolves the {old}/{new} path segments to a year-pair index.
func (s *Server) pairIndex(r *http.Request) (int, error) {
	oldYear, err := strconv.Atoi(r.PathValue("old"))
	if err != nil {
		return 0, fmt.Errorf("bad old year %q", r.PathValue("old"))
	}
	newYear, err := strconv.Atoi(r.PathValue("new"))
	if err != nil {
		return 0, fmt.Errorf("bad new year %q", r.PathValue("new"))
	}
	for i, p := range s.series.Pairs() {
		if p[0].Year == oldYear && p[1].Year == newYear {
			return i, nil
		}
	}
	return 0, fmt.Errorf("no successive census pair %d-%d in series %v", oldYear, newYear, s.series.Years())
}

// yearParam resolves the {year} path segment against the series.
func (s *Server) yearParam(r *http.Request) (int, error) {
	year, err := strconv.Atoi(r.PathValue("year"))
	if err != nil {
		return 0, fmt.Errorf("bad year %q", r.PathValue("year"))
	}
	if s.series.Dataset(year) == nil {
		return 0, fmt.Errorf("no census year %d in series %v", year, s.series.Years())
	}
	return year, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type health struct {
		Status      string `json:"status"`
		Years       []int  `json:"years"`
		Pairs       int    `json:"pairs"`
		PairsCached int    `json:"pairs_cached"`
	}
	h := health{
		Status:      "ok",
		Years:       s.series.Years(),
		Pairs:       len(s.series.Pairs()),
		PairsCached: s.cache.cached(),
	}
	status := http.StatusOK
	if s.shuttingDown() {
		h.Status = "shutting_down"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

func (s *Server) handleYears(w http.ResponseWriter, r *http.Request) {
	type pairJSON struct {
		Old int `json:"old"`
		New int `json:"new"`
	}
	pairs := make([]pairJSON, 0, len(s.series.Pairs()))
	for _, p := range s.series.Pairs() {
		pairs = append(pairs, pairJSON{Old: p[0].Year, New: p[1].Year})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"years": s.series.Years(),
		"pairs": pairs,
	})
}

type sourceJSON struct {
	Kind     string  `json:"kind"`
	Delta    float64 `json:"delta"`
	GroupOld string  `json:"group_old,omitempty"`
	GroupNew string  `json:"group_new,omitempty"`
	GSim     float64 `json:"gsim,omitempty"`
}

type recordLinkJSON struct {
	Old    string      `json:"old"`
	New    string      `json:"new"`
	Sim    float64     `json:"sim"`
	Source *sourceJSON `json:"source,omitempty"`
}

// handleRecordLinks serves the 1:1 record mapping of one census pair with
// per-link provenance (which stage found the link, at which δ, supported by
// which group pair). Optional filters: ?record=<id> restricts to links
// touching the record, ?source=subgraph|remainder to one stage. The page
// window applies after filtering.
func (s *Server) handleRecordLinks(w http.ResponseWriter, r *http.Request) {
	i, err := s.pairIndex(r)
	if err != nil {
		apiError(w, http.StatusNotFound, codeNotFound, err.Error())
		return
	}
	limit, offset, err := pageParams(r)
	if err != nil {
		apiError(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}
	res, err := s.cache.result(r.Context(), i)
	if err != nil {
		fail(w, err)
		return
	}
	recordFilter := r.URL.Query().Get("record")
	sourceFilter := r.URL.Query().Get("source")
	links := make([]recordLinkJSON, 0, len(res.RecordLinks))
	for _, l := range res.RecordLinks {
		if recordFilter != "" && l.Old != recordFilter && l.New != recordFilter {
			continue
		}
		lj := recordLinkJSON{Old: l.Old, New: l.New, Sim: l.Sim}
		if src, ok := res.Sources[linkage.Pair{Old: l.Old, New: l.New}]; ok {
			if sourceFilter != "" && src.Kind.String() != sourceFilter {
				continue
			}
			lj.Source = &sourceJSON{
				Kind:     src.Kind.String(),
				Delta:    src.Delta,
				GroupOld: src.Group.Old,
				GroupNew: src.Group.New,
				GSim:     src.GSim,
			}
		} else if sourceFilter != "" {
			continue
		}
		links = append(links, lj)
	}
	lo, hi, page := pageWindow(len(links), limit, offset)
	writeJSON(w, http.StatusOK, map[string]any{
		"old_year":     s.series.Pairs()[i][0].Year,
		"new_year":     s.series.Pairs()[i][1].Year,
		"page":         page,
		"record_links": links[lo:hi],
	})
}

// handleGroupLinks serves the N:M household mapping of one census pair.
func (s *Server) handleGroupLinks(w http.ResponseWriter, r *http.Request) {
	i, err := s.pairIndex(r)
	if err != nil {
		apiError(w, http.StatusNotFound, codeNotFound, err.Error())
		return
	}
	limit, offset, err := pageParams(r)
	if err != nil {
		apiError(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}
	res, err := s.cache.result(r.Context(), i)
	if err != nil {
		fail(w, err)
		return
	}
	type groupLinkJSON struct {
		Old string `json:"old"`
		New string `json:"new"`
	}
	links := make([]groupLinkJSON, 0, len(res.GroupLinks))
	for _, g := range res.GroupLinks {
		links = append(links, groupLinkJSON{Old: g.Old, New: g.New})
	}
	lo, hi, page := pageWindow(len(links), limit, offset)
	writeJSON(w, http.StatusOK, map[string]any{
		"old_year":    s.series.Pairs()[i][0].Year,
		"new_year":    s.series.Pairs()[i][1].Year,
		"page":        page,
		"group_links": links[lo:hi],
	})
}

// patternEventJSON is one typed evolution event in the flattened pattern
// list: the pattern name plus the old- and new-census households involved.
type patternEventJSON struct {
	Pattern string   `json:"pattern"`
	Old     []string `json:"old"`
	New     []string `json:"new"`
}

// handlePatterns serves the evolution-pattern analysis of one census pair:
// the per-pattern counts of Section 4.1 plus a flattened, paginated list of
// the typed events (preserve/add/remove/move/split/merge and any
// unclassified group links).
func (s *Server) handlePatterns(w http.ResponseWriter, r *http.Request) {
	i, err := s.pairIndex(r)
	if err != nil {
		apiError(w, http.StatusNotFound, codeNotFound, err.Error())
		return
	}
	limit, offset, err := pageParams(r)
	if err != nil {
		apiError(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}
	res, err := s.cache.result(r.Context(), i)
	if err != nil {
		fail(w, err)
		return
	}
	pair := s.series.Pairs()[i]
	a := evolution.Analyze(pair[0], pair[1], res)
	counts := map[string]int{}
	for p := evolution.PatternPreserve; p <= evolution.PatternMerge; p++ {
		counts[p.String()] = a.Count(p)
	}
	var events []patternEventJSON
	for _, pg := range a.PreservedGroups {
		events = append(events, patternEventJSON{
			Pattern: evolution.PatternPreserve.String(), Old: []string{pg[0]}, New: []string{pg[1]}})
	}
	for _, g := range a.AddedGroups {
		events = append(events, patternEventJSON{
			Pattern: evolution.PatternAdd.String(), Old: []string{}, New: []string{g}})
	}
	for _, g := range a.RemovedGroups {
		events = append(events, patternEventJSON{
			Pattern: evolution.PatternRemove.String(), Old: []string{g}, New: []string{}})
	}
	for _, mv := range a.Moves {
		events = append(events, patternEventJSON{
			Pattern: evolution.PatternMove.String(), Old: []string{mv[0]}, New: []string{mv[1]}})
	}
	for _, sp := range a.Splits {
		events = append(events, patternEventJSON{
			Pattern: evolution.PatternSplit.String(), Old: []string{sp.Old}, New: sp.News})
	}
	for _, mg := range a.Merges {
		events = append(events, patternEventJSON{
			Pattern: evolution.PatternMerge.String(), Old: mg.Olds, New: []string{mg.New}})
	}
	for _, ul := range a.UnclassifiedLinks {
		events = append(events, patternEventJSON{
			Pattern: "unclassified", Old: []string{ul[0]}, New: []string{ul[1]}})
	}
	lo, hi, page := pageWindow(len(events), limit, offset)
	writeJSON(w, http.StatusOK, map[string]any{
		"old_year":           a.OldYear,
		"new_year":           a.NewYear,
		"counts":             counts,
		"page":               page,
		"events":             events[lo:hi],
		"unclassified_links": a.UnclassifiedLinks,
		"preserved_records":  len(a.PreservedRecords),
		"added_records":      len(a.AddedRecords),
		"removed_records":    len(a.RemovedRecords),
	})
}

type hhEventJSON struct {
	FromYear int    `json:"from_year"`
	From     string `json:"from"`
	ToYear   int    `json:"to_year"`
	To       string `json:"to"`
	Pattern  string `json:"pattern"`
}

// handleHouseholdTimeline serves one household's forward evolution: every
// typed pattern edge reachable from the household's vertex in the evolution
// graph, in year order — the per-household slice of Fig. 5.
func (s *Server) handleHouseholdTimeline(w http.ResponseWriter, r *http.Request) {
	year, err := s.yearParam(r)
	if err != nil {
		apiError(w, http.StatusNotFound, codeNotFound, err.Error())
		return
	}
	id := r.PathValue("id")
	if s.series.Dataset(year).Household(id) == nil {
		apiError(w, http.StatusNotFound, codeNotFound,
			fmt.Sprintf("no household %q in the %d census", id, year))
		return
	}
	b, err := s.cache.bundle(r.Context())
	if err != nil {
		fail(w, err)
		return
	}
	// Forward reachability over the typed edges.
	start := evolution.GroupVertex{Year: year, Household: id}
	var events []hhEventJSON
	seen := map[evolution.GroupVertex]bool{start: true}
	queue := []evolution.GroupVertex{start}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range b.edgesFrom[v] {
			events = append(events, hhEventJSON{
				FromYear: e.From.Year, From: e.From.Household,
				ToYear: e.To.Year, To: e.To.Household,
				Pattern: e.Pattern.String(),
			})
			if !seen[e.To] {
				seen[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	sort.Slice(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.FromYear != b.FromYear {
			return a.FromYear < b.FromYear
		}
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Pattern < b.Pattern
	})
	writeJSON(w, http.StatusOK, map[string]any{
		"year":      year,
		"household": id,
		"events":    events,
	})
}

type timelineJSON struct {
	Span    int                       `json:"span"`
	Entries []evolution.TimelineEntry `json:"entries"`
}

// handleRecordLifecycle serves the reconstructed person history through the
// given record: every timeline of the evolution graph that traverses the
// record at that census year.
func (s *Server) handleRecordLifecycle(w http.ResponseWriter, r *http.Request) {
	year, err := s.yearParam(r)
	if err != nil {
		apiError(w, http.StatusNotFound, codeNotFound, err.Error())
		return
	}
	id := r.PathValue("id")
	rec := s.series.Dataset(year).Record(id)
	if rec == nil {
		apiError(w, http.StatusNotFound, codeNotFound,
			fmt.Sprintf("no record %q in the %d census", id, year))
		return
	}
	b, err := s.cache.bundle(r.Context())
	if err != nil {
		fail(w, err)
		return
	}
	tls := make([]timelineJSON, 0, 1)
	for _, ti := range b.byRecord[recordKey{Year: year, ID: id}] {
		tl := b.timelines[ti]
		tls = append(tls, timelineJSON{Span: tl.Span(), Entries: tl.Entries})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"year":      year,
		"record":    id,
		"name":      rec.FullName(),
		"household": rec.HouseholdID,
		"timelines": tls,
	})
}

// handleTimelines serves the per-person timelines of the whole series,
// longest first, under the uniform page window. ?min_span=k keeps persons
// traced through at least k censuses (default 2).
func (s *Server) handleTimelines(w http.ResponseWriter, r *http.Request) {
	minSpan := 2
	if v := r.URL.Query().Get("min_span"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			apiError(w, http.StatusBadRequest, codeBadRequest, fmt.Sprintf("bad min_span %q", v))
			return
		}
		minSpan = n
	}
	limit, offset, err := pageParams(r)
	if err != nil {
		apiError(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}
	b, err := s.cache.bundle(r.Context())
	if err != nil {
		fail(w, err)
		return
	}
	var kept []timelineJSON
	for _, tl := range b.timelines {
		if tl.Span() < minSpan {
			continue // timelines are sorted by descending span, but keep scanning: cheap and simple
		}
		kept = append(kept, timelineJSON{Span: tl.Span(), Entries: tl.Entries})
	}
	lo, hi, page := pageWindow(len(kept), limit, offset)
	writeJSON(w, http.StatusOK, map[string]any{
		"min_span":  minSpan,
		"page":      page,
		"timelines": kept[lo:hi],
	})
}
