package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"

	"censuslink/internal/evolution"
	"censuslink/internal/linkage"
)

// writeJSON renders a response body; encoding errors after the header is
// out are unrecoverable and ignored.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errorJSON struct {
	Error string `json:"error"`
}

// fail maps a computation error to an HTTP status: deadline overruns are
// gateway timeouts, cancellations (client gone, server draining) are
// service-unavailable, anything else is a plain 500.
func fail(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, errorJSON{Error: err.Error()})
}

// pairIndex resolves the {old}/{new} path segments to a year-pair index.
func (s *Server) pairIndex(r *http.Request) (int, error) {
	oldYear, err := strconv.Atoi(r.PathValue("old"))
	if err != nil {
		return 0, fmt.Errorf("bad old year %q", r.PathValue("old"))
	}
	newYear, err := strconv.Atoi(r.PathValue("new"))
	if err != nil {
		return 0, fmt.Errorf("bad new year %q", r.PathValue("new"))
	}
	for i, p := range s.series.Pairs() {
		if p[0].Year == oldYear && p[1].Year == newYear {
			return i, nil
		}
	}
	return 0, fmt.Errorf("no successive census pair %d-%d in series %v", oldYear, newYear, s.series.Years())
}

// yearParam resolves the {year} path segment against the series.
func (s *Server) yearParam(r *http.Request) (int, error) {
	year, err := strconv.Atoi(r.PathValue("year"))
	if err != nil {
		return 0, fmt.Errorf("bad year %q", r.PathValue("year"))
	}
	if s.series.Dataset(year) == nil {
		return 0, fmt.Errorf("no census year %d in series %v", year, s.series.Years())
	}
	return year, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type health struct {
		Status      string `json:"status"`
		Years       []int  `json:"years"`
		Pairs       int    `json:"pairs"`
		PairsCached int    `json:"pairs_cached"`
	}
	h := health{
		Status:      "ok",
		Years:       s.series.Years(),
		Pairs:       len(s.series.Pairs()),
		PairsCached: s.cache.cached(),
	}
	status := http.StatusOK
	if s.shuttingDown() {
		h.Status = "shutting_down"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

func (s *Server) handleYears(w http.ResponseWriter, r *http.Request) {
	type pairJSON struct {
		Old int `json:"old"`
		New int `json:"new"`
	}
	pairs := make([]pairJSON, 0, len(s.series.Pairs()))
	for _, p := range s.series.Pairs() {
		pairs = append(pairs, pairJSON{Old: p[0].Year, New: p[1].Year})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"years": s.series.Years(),
		"pairs": pairs,
	})
}

type sourceJSON struct {
	Kind     string  `json:"kind"`
	Delta    float64 `json:"delta"`
	GroupOld string  `json:"group_old,omitempty"`
	GroupNew string  `json:"group_new,omitempty"`
	GSim     float64 `json:"gsim,omitempty"`
}

type recordLinkJSON struct {
	Old    string      `json:"old"`
	New    string      `json:"new"`
	Sim    float64     `json:"sim"`
	Source *sourceJSON `json:"source,omitempty"`
}

// handleRecordLinks serves the 1:1 record mapping of one census pair with
// per-link provenance (which stage found the link, at which δ, supported by
// which group pair). Optional filters: ?record=<id> restricts to links
// touching the record, ?source=subgraph|remainder to one stage.
func (s *Server) handleRecordLinks(w http.ResponseWriter, r *http.Request) {
	i, err := s.pairIndex(r)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorJSON{Error: err.Error()})
		return
	}
	res, err := s.cache.result(r.Context(), i)
	if err != nil {
		fail(w, err)
		return
	}
	recordFilter := r.URL.Query().Get("record")
	sourceFilter := r.URL.Query().Get("source")
	links := make([]recordLinkJSON, 0, len(res.RecordLinks))
	for _, l := range res.RecordLinks {
		if recordFilter != "" && l.Old != recordFilter && l.New != recordFilter {
			continue
		}
		lj := recordLinkJSON{Old: l.Old, New: l.New, Sim: l.Sim}
		if src, ok := res.Sources[linkage.Pair{Old: l.Old, New: l.New}]; ok {
			if sourceFilter != "" && src.Kind.String() != sourceFilter {
				continue
			}
			lj.Source = &sourceJSON{
				Kind:     src.Kind.String(),
				Delta:    src.Delta,
				GroupOld: src.Group.Old,
				GroupNew: src.Group.New,
				GSim:     src.GSim,
			}
		} else if sourceFilter != "" {
			continue
		}
		links = append(links, lj)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"old_year":     s.series.Pairs()[i][0].Year,
		"new_year":     s.series.Pairs()[i][1].Year,
		"count":        len(links),
		"record_links": links,
	})
}

// handleGroupLinks serves the N:M household mapping of one census pair.
func (s *Server) handleGroupLinks(w http.ResponseWriter, r *http.Request) {
	i, err := s.pairIndex(r)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorJSON{Error: err.Error()})
		return
	}
	res, err := s.cache.result(r.Context(), i)
	if err != nil {
		fail(w, err)
		return
	}
	type groupLinkJSON struct {
		Old string `json:"old"`
		New string `json:"new"`
	}
	links := make([]groupLinkJSON, 0, len(res.GroupLinks))
	for _, g := range res.GroupLinks {
		links = append(links, groupLinkJSON{Old: g.Old, New: g.New})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"old_year":    s.series.Pairs()[i][0].Year,
		"new_year":    s.series.Pairs()[i][1].Year,
		"count":       len(links),
		"group_links": links,
	})
}

// handlePatterns serves the evolution-pattern analysis of one census pair:
// the per-pattern counts of Section 4.1 plus the full move/split/merge
// structures and any unclassified group links.
func (s *Server) handlePatterns(w http.ResponseWriter, r *http.Request) {
	i, err := s.pairIndex(r)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorJSON{Error: err.Error()})
		return
	}
	res, err := s.cache.result(r.Context(), i)
	if err != nil {
		fail(w, err)
		return
	}
	pair := s.series.Pairs()[i]
	a := evolution.Analyze(pair[0], pair[1], res)
	counts := map[string]int{}
	for p := evolution.PatternPreserve; p <= evolution.PatternMerge; p++ {
		counts[p.String()] = a.Count(p)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"old_year":           a.OldYear,
		"new_year":           a.NewYear,
		"counts":             counts,
		"preserved_groups":   a.PreservedGroups,
		"moves":              a.Moves,
		"splits":             a.Splits,
		"merges":             a.Merges,
		"unclassified_links": a.UnclassifiedLinks,
		"preserved_records":  len(a.PreservedRecords),
		"added_records":      len(a.AddedRecords),
		"removed_records":    len(a.RemovedRecords),
	})
}

type hhEventJSON struct {
	FromYear int    `json:"from_year"`
	From     string `json:"from"`
	ToYear   int    `json:"to_year"`
	To       string `json:"to"`
	Pattern  string `json:"pattern"`
}

// handleHouseholdTimeline serves one household's forward evolution: every
// typed pattern edge reachable from the household's vertex in the evolution
// graph, in year order — the per-household slice of Fig. 5.
func (s *Server) handleHouseholdTimeline(w http.ResponseWriter, r *http.Request) {
	year, err := s.yearParam(r)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorJSON{Error: err.Error()})
		return
	}
	id := r.PathValue("id")
	if s.series.Dataset(year).Household(id) == nil {
		writeJSON(w, http.StatusNotFound, errorJSON{
			Error: fmt.Sprintf("no household %q in the %d census", id, year)})
		return
	}
	b, err := s.cache.bundle(r.Context())
	if err != nil {
		fail(w, err)
		return
	}
	// Forward reachability over the typed edges.
	start := evolution.GroupVertex{Year: year, Household: id}
	var events []hhEventJSON
	seen := map[evolution.GroupVertex]bool{start: true}
	queue := []evolution.GroupVertex{start}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range b.edgesFrom[v] {
			events = append(events, hhEventJSON{
				FromYear: e.From.Year, From: e.From.Household,
				ToYear: e.To.Year, To: e.To.Household,
				Pattern: e.Pattern.String(),
			})
			if !seen[e.To] {
				seen[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	sort.Slice(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.FromYear != b.FromYear {
			return a.FromYear < b.FromYear
		}
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Pattern < b.Pattern
	})
	writeJSON(w, http.StatusOK, map[string]any{
		"year":      year,
		"household": id,
		"events":    events,
	})
}

type timelineJSON struct {
	Span    int                       `json:"span"`
	Entries []evolution.TimelineEntry `json:"entries"`
}

// handleRecordLifecycle serves the reconstructed person history through the
// given record: every timeline of the evolution graph that traverses the
// record at that census year.
func (s *Server) handleRecordLifecycle(w http.ResponseWriter, r *http.Request) {
	year, err := s.yearParam(r)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorJSON{Error: err.Error()})
		return
	}
	id := r.PathValue("id")
	rec := s.series.Dataset(year).Record(id)
	if rec == nil {
		writeJSON(w, http.StatusNotFound, errorJSON{
			Error: fmt.Sprintf("no record %q in the %d census", id, year)})
		return
	}
	b, err := s.cache.bundle(r.Context())
	if err != nil {
		fail(w, err)
		return
	}
	tls := make([]timelineJSON, 0, 1)
	for _, ti := range b.byRecord[recordKey{Year: year, ID: id}] {
		tl := b.timelines[ti]
		tls = append(tls, timelineJSON{Span: tl.Span(), Entries: tl.Entries})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"year":      year,
		"record":    id,
		"name":      rec.FullName(),
		"household": rec.HouseholdID,
		"timelines": tls,
	})
}

// handleTimelines serves the per-person timelines of the whole series,
// longest first. ?min_span=k keeps persons traced through at least k
// censuses (default 2); ?limit=n caps the response size (default 100).
func (s *Server) handleTimelines(w http.ResponseWriter, r *http.Request) {
	minSpan := 2
	if v := r.URL.Query().Get("min_span"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeJSON(w, http.StatusBadRequest, errorJSON{Error: fmt.Sprintf("bad min_span %q", v)})
			return
		}
		minSpan = n
	}
	limit := 100
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeJSON(w, http.StatusBadRequest, errorJSON{Error: fmt.Sprintf("bad limit %q", v)})
			return
		}
		limit = n
	}
	b, err := s.cache.bundle(r.Context())
	if err != nil {
		fail(w, err)
		return
	}
	total := 0
	tls := make([]timelineJSON, 0, limit)
	for _, tl := range b.timelines {
		if tl.Span() < minSpan {
			continue // timelines are sorted by descending span, but keep scanning: cheap and simple
		}
		total++
		if len(tls) < limit {
			tls = append(tls, timelineJSON{Span: tl.Span(), Entries: tl.Entries})
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"min_span":  minSpan,
		"total":     total,
		"returned":  len(tls),
		"timelines": tls,
	})
}
