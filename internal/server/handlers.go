package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"

	"censuslink/internal/evolution"
	"censuslink/internal/linkage"
)

// Error codes of the v1 envelope. Every non-2xx response carries
// {"error": {"code": <one of these>, "message": <human text>}} so clients
// can branch on the code without parsing prose.
const (
	codeBadRequest  = "bad_request"  // malformed parameter (400)
	codeNotFound    = "not_found"    // unknown year, pair, record, household (404)
	codeTimeout     = "timeout"      // computation exceeded its deadline (504)
	codeUnavailable = "unavailable"  // computation cancelled / server draining (503)
	codeOverloaded  = "overloaded"   // shed by the in-flight cap (503)
	codeRateLimited = "rate_limited" // shed by the per-client token bucket (429)
	codeInternal    = "internal"     // anything else (500)
)

// statusClientClosedRequest is nginx's non-standard 499: the requester went
// away before a response was written. No body accompanies it — nobody is
// left to read one — but the code keeps client disconnects distinguishable
// from genuine 5xx in the per-endpoint response counters.
const statusClientClosedRequest = 499

// writeJSON renders a small, non-list response body. The value is encoded
// to a buffer first, so a marshal failure becomes a clean 500 envelope —
// the status is never committed before the body is known good.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		status = http.StatusInternalServerError
		data, _ = json.Marshal(errorJSON{Error: errorBody{
			Code: codeInternal, Message: "response encoding failed: " + err.Error()}})
	}
	data = append(data, '\n')
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(status)
	_, _ = w.Write(data)
}

// field is one scalar member of a list response's envelope.
type field struct {
	name  string
	value any
}

// writeListJSON streams a list-shaped response: the envelope fields are
// marshalled up front — any encoding error there still becomes a clean 500
// — then the page's items are encoded one at a time through a buffered
// writer, so the response is never materialized as one whole indented byte
// slice. An item that fails to encode after the header is out cannot be
// unsent; the failure is counted and the connection aborted, so the client
// sees a broken transfer instead of a clean 200 with a truncated body.
func (s *Server) writeListJSON(w http.ResponseWriter, status int, fields []field, listName string, n int, item func(int) any) {
	var head bytes.Buffer
	head.WriteByte('{')
	for _, f := range fields {
		data, err := json.Marshal(f.value)
		if err != nil {
			apiError(w, http.StatusInternalServerError, codeInternal,
				fmt.Sprintf("response encoding failed on %q: %v", f.name, err))
			return
		}
		key, _ := json.Marshal(f.name)
		head.Write(key)
		head.WriteByte(':')
		head.Write(data)
		head.WriteByte(',')
	}
	key, _ := json.Marshal(listName)
	head.Write(key)
	head.WriteString(":[")

	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	bw := bufio.NewWriterSize(w, 16<<10)
	_, _ = bw.Write(head.Bytes())
	for i := 0; i < n; i++ {
		data, err := json.Marshal(item(i))
		if err != nil {
			s.requests.encodeErrors.Add(1)
			panic(http.ErrAbortHandler)
		}
		if i > 0 {
			_ = bw.WriteByte(',')
		}
		_, _ = bw.Write(data)
	}
	_, _ = bw.WriteString("]}\n")
	_ = bw.Flush() // a flush error means the client is gone; nothing to do
}

// errorJSON is the uniform error envelope of the v1 API.
type errorJSON struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// apiError writes the uniform error envelope.
func apiError(w http.ResponseWriter, status int, code, message string) {
	writeJSON(w, status, errorJSON{Error: errorBody{Code: code, Message: message}})
}

// fail maps a computation error to a response. Deadline overruns are
// gateway timeouts; a requester that hung up before the answer gets status
// 499 with no body (nobody reads it) and is counted as client_gone rather
// than polluting the unavailable tally; a server-side cancellation
// (draining) is 503 unavailable; anything else is a plain 500.
func (s *Server) fail(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		apiError(w, http.StatusGatewayTimeout, codeTimeout, err.Error())
	case r.Context().Err() != nil && !s.shuttingDown():
		w.WriteHeader(statusClientClosedRequest)
	case errors.Is(err, context.Canceled):
		apiError(w, http.StatusServiceUnavailable, codeUnavailable, err.Error())
	default:
		apiError(w, http.StatusInternalServerError, codeInternal, err.Error())
	}
}

// pageJSON describes the window a list-shaped response covers: the
// requested limit/offset, the total number of items after filtering, and
// how many of them this response carries.
type pageJSON struct {
	Limit    int `json:"limit"`
	Offset   int `json:"offset"`
	Total    int `json:"total"`
	Returned int `json:"returned"`
}

const (
	defaultPageLimit = 100
	maxPageLimit     = 1000
)

// pageParams parses the uniform ?limit= / ?offset= pagination parameters.
func pageParams(r *http.Request) (limit, offset int, err error) {
	limit = defaultPageLimit
	if v := r.URL.Query().Get("limit"); v != "" {
		n, e := strconv.Atoi(v)
		if e != nil || n < 1 || n > maxPageLimit {
			return 0, 0, fmt.Errorf("bad limit %q: want an integer in 1..%d", v, maxPageLimit)
		}
		limit = n
	}
	if v := r.URL.Query().Get("offset"); v != "" {
		n, e := strconv.Atoi(v)
		if e != nil || n < 0 {
			return 0, 0, fmt.Errorf("bad offset %q: want an integer >= 0", v)
		}
		offset = n
	}
	return limit, offset, nil
}

// window collects the [offset, offset+limit) page of a filtered sequence
// without materializing the rest: feed every passing item to add, then read
// the page slice and descriptor. Only up to limit items are ever kept.
type window[T any] struct {
	limit, offset int
	total         int
	page          []T
}

func newWindow[T any](limit, offset int) *window[T] {
	return &window[T]{limit: limit, offset: offset}
}

// add admits one item that passed the handler's filters.
func (w *window[T]) add(v T) {
	if w.total >= w.offset && len(w.page) < w.limit {
		w.page = append(w.page, v)
	}
	w.total++
}

// pageDesc returns the filled page descriptor.
func (w *window[T]) pageDesc() pageJSON {
	return pageJSON{Limit: w.limit, Offset: w.offset, Total: w.total, Returned: len(w.page)}
}

// pairIndex resolves the {old}/{new} path segments to a year-pair index.
func (s *Server) pairIndex(r *http.Request) (int, error) {
	oldYear, err := strconv.Atoi(r.PathValue("old"))
	if err != nil {
		return 0, fmt.Errorf("bad old year %q", r.PathValue("old"))
	}
	newYear, err := strconv.Atoi(r.PathValue("new"))
	if err != nil {
		return 0, fmt.Errorf("bad new year %q", r.PathValue("new"))
	}
	for i, p := range s.series.Pairs() {
		if p[0].Year == oldYear && p[1].Year == newYear {
			return i, nil
		}
	}
	return 0, fmt.Errorf("no successive census pair %d-%d in series %v", oldYear, newYear, s.series.Years())
}

// yearParam resolves the {year} path segment against the series.
func (s *Server) yearParam(r *http.Request) (int, error) {
	year, err := strconv.Atoi(r.PathValue("year"))
	if err != nil {
		return 0, fmt.Errorf("bad year %q", r.PathValue("year"))
	}
	if s.series.Dataset(year) == nil {
		return 0, fmt.Errorf("no census year %d in series %v", year, s.series.Years())
	}
	return year, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type health struct {
		Status      string `json:"status"`
		Years       []int  `json:"years"`
		Pairs       int    `json:"pairs"`
		PairsCached int    `json:"pairs_cached"`
		// Store is "ok" or "degraded"; absent when no store is configured.
		// A degraded store does NOT fail the health check — the server still
		// answers every query from cache and pipeline — it is detail for
		// operators and the chaos harness.
		Store string `json:"store,omitempty"`
	}
	h := health{
		Status:      "ok",
		Years:       s.series.Years(),
		Pairs:       len(s.series.Pairs()),
		PairsCached: s.cache.cached(),
	}
	if s.store != nil {
		h.Store = "ok"
		if s.health.isDegraded() {
			h.Store = "degraded"
		}
	}
	status := http.StatusOK
	if s.shuttingDown() {
		h.Status = "shutting_down"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

func (s *Server) handleYears(w http.ResponseWriter, r *http.Request) {
	if notModified(w, r, s.seriesETag(r)) {
		return
	}
	type pairJSON struct {
		Old int `json:"old"`
		New int `json:"new"`
	}
	pairs := make([]pairJSON, 0, len(s.series.Pairs()))
	for _, p := range s.series.Pairs() {
		pairs = append(pairs, pairJSON{Old: p[0].Year, New: p[1].Year})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"years": s.series.Years(),
		"pairs": pairs,
	})
}

type sourceJSON struct {
	Kind     string  `json:"kind"`
	Delta    float64 `json:"delta"`
	GroupOld string  `json:"group_old,omitempty"`
	GroupNew string  `json:"group_new,omitempty"`
	GSim     float64 `json:"gsim,omitempty"`
}

type recordLinkJSON struct {
	Old    string      `json:"old"`
	New    string      `json:"new"`
	Sim    float64     `json:"sim"`
	Source *sourceJSON `json:"source,omitempty"`
}

// handleRecordLinks serves the 1:1 record mapping of one census pair with
// per-link provenance (which stage found the link, at which δ, supported by
// which group pair). Optional filters: ?record=<id> restricts to links
// touching the record, ?source=subgraph|remainder to one stage. The page
// window applies after filtering; only the window's items are materialized
// and they stream straight to the connection.
func (s *Server) handleRecordLinks(w http.ResponseWriter, r *http.Request) {
	i, err := s.pairIndex(r)
	if err != nil {
		apiError(w, http.StatusNotFound, codeNotFound, err.Error())
		return
	}
	limit, offset, err := pageParams(r)
	if err != nil {
		apiError(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}
	if notModified(w, r, s.pairETag(i, r)) {
		return
	}
	res, err := s.cache.result(r.Context(), i)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	recordFilter := r.URL.Query().Get("record")
	sourceFilter := r.URL.Query().Get("source")
	win := newWindow[recordLinkJSON](limit, offset)
	for _, l := range res.RecordLinks {
		if recordFilter != "" && l.Old != recordFilter && l.New != recordFilter {
			continue
		}
		lj := recordLinkJSON{Old: l.Old, New: l.New, Sim: l.Sim}
		if src, ok := res.Sources[linkage.Pair{Old: l.Old, New: l.New}]; ok {
			if sourceFilter != "" && src.Kind.String() != sourceFilter {
				continue
			}
			lj.Source = &sourceJSON{
				Kind:     src.Kind.String(),
				Delta:    src.Delta,
				GroupOld: src.Group.Old,
				GroupNew: src.Group.New,
				GSim:     src.GSim,
			}
		} else if sourceFilter != "" {
			continue
		}
		win.add(lj)
	}
	s.writeListJSON(w, http.StatusOK, []field{
		{"old_year", s.series.Pairs()[i][0].Year},
		{"new_year", s.series.Pairs()[i][1].Year},
		{"page", win.pageDesc()},
	}, "record_links", len(win.page), func(i int) any { return win.page[i] })
}

// handleGroupLinks serves the N:M household mapping of one census pair.
func (s *Server) handleGroupLinks(w http.ResponseWriter, r *http.Request) {
	i, err := s.pairIndex(r)
	if err != nil {
		apiError(w, http.StatusNotFound, codeNotFound, err.Error())
		return
	}
	limit, offset, err := pageParams(r)
	if err != nil {
		apiError(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}
	if notModified(w, r, s.pairETag(i, r)) {
		return
	}
	res, err := s.cache.result(r.Context(), i)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	type groupLinkJSON struct {
		Old string `json:"old"`
		New string `json:"new"`
	}
	win := newWindow[groupLinkJSON](limit, offset)
	for _, g := range res.GroupLinks {
		win.add(groupLinkJSON{Old: g.Old, New: g.New})
	}
	s.writeListJSON(w, http.StatusOK, []field{
		{"old_year", s.series.Pairs()[i][0].Year},
		{"new_year", s.series.Pairs()[i][1].Year},
		{"page", win.pageDesc()},
	}, "group_links", len(win.page), func(i int) any { return win.page[i] })
}

// patternEventJSON is one typed evolution event in the flattened pattern
// list: the pattern name plus the old- and new-census households involved.
type patternEventJSON struct {
	Pattern string   `json:"pattern"`
	Old     []string `json:"old"`
	New     []string `json:"new"`
}

// handlePatterns serves the evolution-pattern analysis of one census pair:
// the per-pattern counts of Section 4.1 plus a flattened, paginated list of
// the typed events (preserve/add/remove/move/split/merge and any
// unclassified group links).
func (s *Server) handlePatterns(w http.ResponseWriter, r *http.Request) {
	i, err := s.pairIndex(r)
	if err != nil {
		apiError(w, http.StatusNotFound, codeNotFound, err.Error())
		return
	}
	limit, offset, err := pageParams(r)
	if err != nil {
		apiError(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}
	if notModified(w, r, s.pairETag(i, r)) {
		return
	}
	res, err := s.cache.result(r.Context(), i)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	pair := s.series.Pairs()[i]
	a := evolution.Analyze(pair[0], pair[1], res)
	counts := map[string]int{}
	for p := evolution.PatternPreserve; p <= evolution.PatternMerge; p++ {
		counts[p.String()] = a.Count(p)
	}
	win := newWindow[patternEventJSON](limit, offset)
	for _, pg := range a.PreservedGroups {
		win.add(patternEventJSON{
			Pattern: evolution.PatternPreserve.String(), Old: []string{pg[0]}, New: []string{pg[1]}})
	}
	for _, g := range a.AddedGroups {
		win.add(patternEventJSON{
			Pattern: evolution.PatternAdd.String(), Old: []string{}, New: []string{g}})
	}
	for _, g := range a.RemovedGroups {
		win.add(patternEventJSON{
			Pattern: evolution.PatternRemove.String(), Old: []string{g}, New: []string{}})
	}
	for _, mv := range a.Moves {
		win.add(patternEventJSON{
			Pattern: evolution.PatternMove.String(), Old: []string{mv[0]}, New: []string{mv[1]}})
	}
	for _, sp := range a.Splits {
		win.add(patternEventJSON{
			Pattern: evolution.PatternSplit.String(), Old: []string{sp.Old}, New: sp.News})
	}
	for _, mg := range a.Merges {
		win.add(patternEventJSON{
			Pattern: evolution.PatternMerge.String(), Old: mg.Olds, New: []string{mg.New}})
	}
	for _, ul := range a.UnclassifiedLinks {
		win.add(patternEventJSON{
			Pattern: "unclassified", Old: []string{ul[0]}, New: []string{ul[1]}})
	}
	s.writeListJSON(w, http.StatusOK, []field{
		{"old_year", a.OldYear},
		{"new_year", a.NewYear},
		{"counts", counts},
		{"page", win.pageDesc()},
		{"unclassified_links", a.UnclassifiedLinks},
		{"preserved_records", len(a.PreservedRecords)},
		{"added_records", len(a.AddedRecords)},
		{"removed_records", len(a.RemovedRecords)},
	}, "events", len(win.page), func(i int) any { return win.page[i] })
}

type hhEventJSON struct {
	FromYear int    `json:"from_year"`
	From     string `json:"from"`
	ToYear   int    `json:"to_year"`
	To       string `json:"to"`
	Pattern  string `json:"pattern"`
}

// handleHouseholdTimeline serves one household's forward evolution: every
// typed pattern edge reachable from the household's vertex in the evolution
// graph, in year order — the per-household slice of Fig. 5.
func (s *Server) handleHouseholdTimeline(w http.ResponseWriter, r *http.Request) {
	year, err := s.yearParam(r)
	if err != nil {
		apiError(w, http.StatusNotFound, codeNotFound, err.Error())
		return
	}
	id := r.PathValue("id")
	if s.series.Dataset(year).Household(id) == nil {
		apiError(w, http.StatusNotFound, codeNotFound,
			fmt.Sprintf("no household %q in the %d census", id, year))
		return
	}
	if notModified(w, r, s.seriesETag(r)) {
		return
	}
	b, err := s.cache.bundle(r.Context())
	if err != nil {
		s.fail(w, r, err)
		return
	}
	// Forward reachability over the typed edges.
	start := evolution.GroupVertex{Year: year, Household: id}
	var events []hhEventJSON
	seen := map[evolution.GroupVertex]bool{start: true}
	queue := []evolution.GroupVertex{start}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range b.edgesFrom[v] {
			events = append(events, hhEventJSON{
				FromYear: e.From.Year, From: e.From.Household,
				ToYear: e.To.Year, To: e.To.Household,
				Pattern: e.Pattern.String(),
			})
			if !seen[e.To] {
				seen[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	sort.Slice(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.FromYear != b.FromYear {
			return a.FromYear < b.FromYear
		}
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Pattern < b.Pattern
	})
	s.writeListJSON(w, http.StatusOK, []field{
		{"year", year},
		{"household", id},
	}, "events", len(events), func(i int) any { return events[i] })
}

type timelineJSON struct {
	Span    int                       `json:"span"`
	Entries []evolution.TimelineEntry `json:"entries"`
}

// handleRecordLifecycle serves the reconstructed person history through the
// given record: every timeline of the evolution graph that traverses the
// record at that census year.
func (s *Server) handleRecordLifecycle(w http.ResponseWriter, r *http.Request) {
	year, err := s.yearParam(r)
	if err != nil {
		apiError(w, http.StatusNotFound, codeNotFound, err.Error())
		return
	}
	id := r.PathValue("id")
	rec := s.series.Dataset(year).Record(id)
	if rec == nil {
		apiError(w, http.StatusNotFound, codeNotFound,
			fmt.Sprintf("no record %q in the %d census", id, year))
		return
	}
	if notModified(w, r, s.seriesETag(r)) {
		return
	}
	b, err := s.cache.bundle(r.Context())
	if err != nil {
		s.fail(w, r, err)
		return
	}
	tls := make([]timelineJSON, 0, 1)
	for _, ti := range b.byRecord[recordKey{Year: year, ID: id}] {
		tl := b.timelines[ti]
		tls = append(tls, timelineJSON{Span: tl.Span(), Entries: tl.Entries})
	}
	s.writeListJSON(w, http.StatusOK, []field{
		{"year", year},
		{"record", id},
		{"name", rec.FullName()},
		{"household", rec.HouseholdID},
	}, "timelines", len(tls), func(i int) any { return tls[i] })
}

// handleTimelines serves the per-person timelines of the whole series,
// longest first, under the uniform page window. ?min_span=k keeps persons
// traced through at least k censuses (default 2).
func (s *Server) handleTimelines(w http.ResponseWriter, r *http.Request) {
	minSpan := 2
	if v := r.URL.Query().Get("min_span"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			apiError(w, http.StatusBadRequest, codeBadRequest, fmt.Sprintf("bad min_span %q", v))
			return
		}
		minSpan = n
	}
	limit, offset, err := pageParams(r)
	if err != nil {
		apiError(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}
	if notModified(w, r, s.seriesETag(r)) {
		return
	}
	b, err := s.cache.bundle(r.Context())
	if err != nil {
		s.fail(w, r, err)
		return
	}
	win := newWindow[timelineJSON](limit, offset)
	for _, tl := range b.timelines {
		if tl.Span() < minSpan {
			continue // timelines are sorted by descending span, but keep scanning: cheap and simple
		}
		win.add(timelineJSON{Span: tl.Span(), Entries: tl.Entries})
	}
	s.writeListJSON(w, http.StatusOK, []field{
		{"min_span", minSpan},
		{"page", win.pageDesc()},
	}, "timelines", len(win.page), func(i int) any { return win.page[i] })
}
