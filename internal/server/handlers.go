package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"

	"censuslink/internal/evolution"
	"censuslink/internal/linkage"
	"censuslink/internal/server/api"
)

// countingEncodeError is the WriteList mid-stream failure callback: the
// connection is about to be aborted; count it so /metrics shows the broken
// transfer.
func (s *Server) countingEncodeError() { s.requests.encodeErrors.Add(1) }

// writeList streams a list response with the server's encode-error counter
// attached.
func (s *Server) writeList(w http.ResponseWriter, status int, fields []api.Field, listName string, n int, item func(int) any) {
	api.WriteList(w, status, fields, listName, n, item, s.countingEncodeError)
}

// fail maps a computation error to a response. Deadline overruns are
// gateway timeouts; a requester that hung up before the answer gets status
// 499 with no body (nobody reads it) and is counted as client_gone rather
// than polluting the unavailable tally; a server-side cancellation
// (draining) is 503 unavailable; anything else is a plain 500.
func (s *Server) fail(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		api.Error(w, http.StatusGatewayTimeout, api.CodeTimeout, err.Error())
	case r.Context().Err() != nil && !s.shuttingDown():
		w.WriteHeader(api.StatusClientClosedRequest)
	case errors.Is(err, context.Canceled):
		api.Error(w, http.StatusServiceUnavailable, api.CodeUnavailable, err.Error())
	default:
		api.Error(w, http.StatusInternalServerError, api.CodeInternal, err.Error())
	}
}

// pairIndex resolves the {old}/{new} path segments to a year-pair index of
// the given series snapshot. Pair indices are stable across ingests — years
// only append — so the index stays valid against the cache even if the
// series grows mid-request.
func pairIndex(st *seriesState, r *http.Request) (int, error) {
	oldYear, err := strconv.Atoi(r.PathValue("old"))
	if err != nil {
		return 0, fmt.Errorf("bad old year %q", r.PathValue("old"))
	}
	newYear, err := strconv.Atoi(r.PathValue("new"))
	if err != nil {
		return 0, fmt.Errorf("bad new year %q", r.PathValue("new"))
	}
	for i, p := range st.series.Pairs() {
		if p[0].Year == oldYear && p[1].Year == newYear {
			return i, nil
		}
	}
	return 0, fmt.Errorf("no successive census pair %d-%d in series %v", oldYear, newYear, st.series.Years())
}

// yearParam resolves the {year} path segment against the series snapshot.
func yearParam(st *seriesState, r *http.Request) (int, error) {
	year, err := strconv.Atoi(r.PathValue("year"))
	if err != nil {
		return 0, fmt.Errorf("bad year %q", r.PathValue("year"))
	}
	if st.series.Dataset(year) == nil {
		return 0, fmt.Errorf("no census year %d in series %v", year, st.series.Years())
	}
	return year, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type health struct {
		Status      string `json:"status"`
		Years       []int  `json:"years"`
		Pairs       int    `json:"pairs"`
		PairsCached int    `json:"pairs_cached"`
		// Generation counts ingested census years since startup; watch
		// events and ingest responses carry the same number.
		Generation uint64 `json:"generation"`
		// Store is "ok" or "degraded"; absent when no store is configured.
		// A degraded store does NOT fail the health check — the server still
		// answers every query from cache and pipeline — it is detail for
		// operators and the chaos harness.
		Store string `json:"store,omitempty"`
	}
	st := s.cur()
	h := health{
		Status:      "ok",
		Years:       st.series.Years(),
		Pairs:       len(st.series.Pairs()),
		PairsCached: s.cache.cached(),
		Generation:  st.gen,
	}
	if s.store != nil {
		h.Store = "ok"
		if s.health.isDegraded() {
			h.Store = "degraded"
		}
	}
	status := http.StatusOK
	if s.shuttingDown() {
		h.Status = "shutting_down"
		status = http.StatusServiceUnavailable
	}
	api.WriteJSON(w, status, h)
}

func (s *Server) handleYears(w http.ResponseWriter, r *http.Request) {
	st := s.cur()
	if api.NotModified(w, r, s.seriesETag(st, r)) {
		return
	}
	type pairJSON struct {
		Old int `json:"old"`
		New int `json:"new"`
	}
	pairs := make([]pairJSON, 0, len(st.series.Pairs()))
	for _, p := range st.series.Pairs() {
		pairs = append(pairs, pairJSON{Old: p[0].Year, New: p[1].Year})
	}
	api.WriteJSON(w, http.StatusOK, map[string]any{
		"years":      st.series.Years(),
		"pairs":      pairs,
		"generation": st.gen,
	})
}

type sourceJSON struct {
	Kind     string  `json:"kind"`
	Delta    float64 `json:"delta"`
	GroupOld string  `json:"group_old,omitempty"`
	GroupNew string  `json:"group_new,omitempty"`
	GSim     float64 `json:"gsim,omitempty"`
}

type recordLinkJSON struct {
	Old    string      `json:"old"`
	New    string      `json:"new"`
	Sim    float64     `json:"sim"`
	Source *sourceJSON `json:"source,omitempty"`
}

// handleRecordLinks serves the 1:1 record mapping of one census pair with
// per-link provenance (which stage found the link, at which δ, supported by
// which group pair). Optional filters: ?record=<id> restricts to links
// touching the record, ?source=subgraph|remainder to one stage. The page
// window applies after filtering; only the window's items are materialized
// and they stream straight to the connection.
func (s *Server) handleRecordLinks(w http.ResponseWriter, r *http.Request) {
	st := s.cur()
	i, err := pairIndex(st, r)
	if err != nil {
		api.Error(w, http.StatusNotFound, api.CodeNotFound, err.Error())
		return
	}
	recordFilter := r.URL.Query().Get("record")
	sourceFilter := r.URL.Query().Get("source")
	basis := s.pairBasis(st, i, r, recordFilter, sourceFilter)
	page, apiErr := api.ParsePage(r, basis)
	if apiErr != nil {
		apiErr.Write(w)
		return
	}
	if api.NotModified(w, r, s.pairETag(st, i, r)) {
		return
	}
	res, err := s.cache.result(r.Context(), i)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	win := api.NewWindow[recordLinkJSON](page)
	for _, l := range res.RecordLinks {
		if recordFilter != "" && l.Old != recordFilter && l.New != recordFilter {
			continue
		}
		lj := recordLinkJSON{Old: l.Old, New: l.New, Sim: l.Sim}
		if src, ok := res.Sources[linkage.Pair{Old: l.Old, New: l.New}]; ok {
			if sourceFilter != "" && src.Kind.String() != sourceFilter {
				continue
			}
			lj.Source = &sourceJSON{
				Kind:     src.Kind.String(),
				Delta:    src.Delta,
				GroupOld: src.Group.Old,
				GroupNew: src.Group.New,
				GSim:     src.GSim,
			}
		} else if sourceFilter != "" {
			continue
		}
		win.Add(lj)
	}
	pair := st.series.Pairs()[i]
	s.writeList(w, http.StatusOK, []api.Field{
		{Name: "old_year", Value: pair[0].Year},
		{Name: "new_year", Value: pair[1].Year},
		{Name: "page", Value: win.PageOf(basis)},
	}, "record_links", len(win.Items), func(i int) any { return win.Items[i] })
}

// handleGroupLinks serves the N:M household mapping of one census pair.
func (s *Server) handleGroupLinks(w http.ResponseWriter, r *http.Request) {
	st := s.cur()
	i, err := pairIndex(st, r)
	if err != nil {
		api.Error(w, http.StatusNotFound, api.CodeNotFound, err.Error())
		return
	}
	basis := s.pairBasis(st, i, r)
	page, apiErr := api.ParsePage(r, basis)
	if apiErr != nil {
		apiErr.Write(w)
		return
	}
	if api.NotModified(w, r, s.pairETag(st, i, r)) {
		return
	}
	res, err := s.cache.result(r.Context(), i)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	type groupLinkJSON struct {
		Old string `json:"old"`
		New string `json:"new"`
	}
	win := api.NewWindow[groupLinkJSON](page)
	for _, g := range res.GroupLinks {
		win.Add(groupLinkJSON{Old: g.Old, New: g.New})
	}
	pair := st.series.Pairs()[i]
	s.writeList(w, http.StatusOK, []api.Field{
		{Name: "old_year", Value: pair[0].Year},
		{Name: "new_year", Value: pair[1].Year},
		{Name: "page", Value: win.PageOf(basis)},
	}, "group_links", len(win.Items), func(i int) any { return win.Items[i] })
}

// patternEventJSON is one typed evolution event in the flattened pattern
// list: the pattern name plus the old- and new-census households involved.
type patternEventJSON struct {
	Pattern string   `json:"pattern"`
	Old     []string `json:"old"`
	New     []string `json:"new"`
}

// patternEvents flattens a pair analysis into the typed event list served
// by handlePatterns and carried (in batches) by the watch feed.
func patternEvents(a *evolution.PairAnalysis) []patternEventJSON {
	var events []patternEventJSON
	for _, pg := range a.PreservedGroups {
		events = append(events, patternEventJSON{
			Pattern: evolution.PatternPreserve.String(), Old: []string{pg[0]}, New: []string{pg[1]}})
	}
	for _, g := range a.AddedGroups {
		events = append(events, patternEventJSON{
			Pattern: evolution.PatternAdd.String(), Old: []string{}, New: []string{g}})
	}
	for _, g := range a.RemovedGroups {
		events = append(events, patternEventJSON{
			Pattern: evolution.PatternRemove.String(), Old: []string{g}, New: []string{}})
	}
	for _, mv := range a.Moves {
		events = append(events, patternEventJSON{
			Pattern: evolution.PatternMove.String(), Old: []string{mv[0]}, New: []string{mv[1]}})
	}
	for _, sp := range a.Splits {
		events = append(events, patternEventJSON{
			Pattern: evolution.PatternSplit.String(), Old: []string{sp.Old}, New: sp.News})
	}
	for _, mg := range a.Merges {
		events = append(events, patternEventJSON{
			Pattern: evolution.PatternMerge.String(), Old: mg.Olds, New: []string{mg.New}})
	}
	for _, ul := range a.UnclassifiedLinks {
		events = append(events, patternEventJSON{
			Pattern: "unclassified", Old: []string{ul[0]}, New: []string{ul[1]}})
	}
	return events
}

// patternCounts renders the per-pattern counts of Section 4.1 as a map.
func patternCounts(a *evolution.PairAnalysis) map[string]int {
	counts := map[string]int{}
	for p := evolution.PatternPreserve; p <= evolution.PatternMerge; p++ {
		counts[p.String()] = a.Count(p)
	}
	return counts
}

// handlePatterns serves the evolution-pattern analysis of one census pair:
// the per-pattern counts of Section 4.1 plus a flattened, paginated list of
// the typed events (preserve/add/remove/move/split/merge and any
// unclassified group links).
func (s *Server) handlePatterns(w http.ResponseWriter, r *http.Request) {
	st := s.cur()
	i, err := pairIndex(st, r)
	if err != nil {
		api.Error(w, http.StatusNotFound, api.CodeNotFound, err.Error())
		return
	}
	basis := s.pairBasis(st, i, r)
	page, apiErr := api.ParsePage(r, basis)
	if apiErr != nil {
		apiErr.Write(w)
		return
	}
	if api.NotModified(w, r, s.pairETag(st, i, r)) {
		return
	}
	res, err := s.cache.result(r.Context(), i)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	pair := st.series.Pairs()[i]
	a := evolution.Analyze(pair[0], pair[1], res)
	win := api.NewWindow[patternEventJSON](page)
	for _, ev := range patternEvents(a) {
		win.Add(ev)
	}
	s.writeList(w, http.StatusOK, []api.Field{
		{Name: "old_year", Value: a.OldYear},
		{Name: "new_year", Value: a.NewYear},
		{Name: "counts", Value: patternCounts(a)},
		{Name: "page", Value: win.PageOf(basis)},
		{Name: "unclassified_links", Value: a.UnclassifiedLinks},
		{Name: "preserved_records", Value: len(a.PreservedRecords)},
		{Name: "added_records", Value: len(a.AddedRecords)},
		{Name: "removed_records", Value: len(a.RemovedRecords)},
	}, "events", len(win.Items), func(i int) any { return win.Items[i] })
}

type hhEventJSON struct {
	FromYear int    `json:"from_year"`
	From     string `json:"from"`
	ToYear   int    `json:"to_year"`
	To       string `json:"to"`
	Pattern  string `json:"pattern"`
}

// handleHouseholdTimeline serves one household's forward evolution: every
// typed pattern edge reachable from the household's vertex in the evolution
// graph, in year order — the per-household slice of Fig. 5.
func (s *Server) handleHouseholdTimeline(w http.ResponseWriter, r *http.Request) {
	st := s.cur()
	year, err := yearParam(st, r)
	if err != nil {
		api.Error(w, http.StatusNotFound, api.CodeNotFound, err.Error())
		return
	}
	id := r.PathValue("id")
	if st.series.Dataset(year).Household(id) == nil {
		api.Error(w, http.StatusNotFound, api.CodeNotFound,
			fmt.Sprintf("no household %q in the %d census", id, year))
		return
	}
	if api.NotModified(w, r, s.seriesETag(st, r)) {
		return
	}
	b, err := s.cache.bundle(r.Context())
	if err != nil {
		s.fail(w, r, err)
		return
	}
	// Forward reachability over the typed edges.
	start := evolution.GroupVertex{Year: year, Household: id}
	var events []hhEventJSON
	seen := map[evolution.GroupVertex]bool{start: true}
	queue := []evolution.GroupVertex{start}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range b.edgesFrom[v] {
			events = append(events, hhEventJSON{
				FromYear: e.From.Year, From: e.From.Household,
				ToYear: e.To.Year, To: e.To.Household,
				Pattern: e.Pattern.String(),
			})
			if !seen[e.To] {
				seen[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	sort.Slice(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.FromYear != b.FromYear {
			return a.FromYear < b.FromYear
		}
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Pattern < b.Pattern
	})
	s.writeList(w, http.StatusOK, []api.Field{
		{Name: "year", Value: year},
		{Name: "household", Value: id},
	}, "events", len(events), func(i int) any { return events[i] })
}

type timelineJSON struct {
	Span    int                       `json:"span"`
	Entries []evolution.TimelineEntry `json:"entries"`
}

// handleRecordLifecycle serves the reconstructed person history through the
// given record: every timeline of the evolution graph that traverses the
// record at that census year.
func (s *Server) handleRecordLifecycle(w http.ResponseWriter, r *http.Request) {
	st := s.cur()
	year, err := yearParam(st, r)
	if err != nil {
		api.Error(w, http.StatusNotFound, api.CodeNotFound, err.Error())
		return
	}
	id := r.PathValue("id")
	rec := st.series.Dataset(year).Record(id)
	if rec == nil {
		api.Error(w, http.StatusNotFound, api.CodeNotFound,
			fmt.Sprintf("no record %q in the %d census", id, year))
		return
	}
	if api.NotModified(w, r, s.seriesETag(st, r)) {
		return
	}
	b, err := s.cache.bundle(r.Context())
	if err != nil {
		s.fail(w, r, err)
		return
	}
	tls := make([]timelineJSON, 0, 1)
	for _, ti := range b.byRecord[recordKey{Year: year, ID: id}] {
		tl := b.timelines[ti]
		tls = append(tls, timelineJSON{Span: tl.Span(), Entries: tl.Entries})
	}
	s.writeList(w, http.StatusOK, []api.Field{
		{Name: "year", Value: year},
		{Name: "record", Value: id},
		{Name: "name", Value: rec.FullName()},
		{Name: "household", Value: rec.HouseholdID},
	}, "timelines", len(tls), func(i int) any { return tls[i] })
}

// handleTimelines serves the per-person timelines of the whole series,
// longest first, under the uniform page window. ?min_span=k keeps persons
// traced through at least k censuses (default 2). This is the API's
// feed-like read: the list grows when a census year is ingested, so offset
// pagination across an ingest can skip or repeat entries — cursors detect
// the change (410 gone) and are the documented way to page it.
func (s *Server) handleTimelines(w http.ResponseWriter, r *http.Request) {
	st := s.cur()
	minSpan := 2
	if v := r.URL.Query().Get("min_span"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			api.Error(w, http.StatusBadRequest, api.CodeBadRequest, fmt.Sprintf("bad min_span %q", v))
			return
		}
		minSpan = n
	}
	basis := s.seriesBasis(st, r, strconv.Itoa(minSpan))
	page, apiErr := api.ParsePage(r, basis)
	if apiErr != nil {
		apiErr.Write(w)
		return
	}
	if api.NotModified(w, r, s.seriesETag(st, r)) {
		return
	}
	b, err := s.cache.bundle(r.Context())
	if err != nil {
		s.fail(w, r, err)
		return
	}
	win := api.NewWindow[timelineJSON](page)
	for _, tl := range b.timelines {
		if tl.Span() < minSpan {
			continue // timelines are sorted by descending span, but keep scanning: cheap and simple
		}
		win.Add(timelineJSON{Span: tl.Span(), Entries: tl.Entries})
	}
	s.writeList(w, http.StatusOK, []api.Field{
		{Name: "min_span", Value: minSpan},
		{Name: "page", Value: win.PageOf(basis)},
	}, "timelines", len(win.Items), func(i int) any { return win.Items[i] })
}
