package server

import (
	"context"
	"errors"
	"sync"

	"censuslink/internal/evolution"
	"censuslink/internal/linkage"
	"censuslink/internal/obs"
)

// flight is the single-flight slot of one expensive computation: the first
// request starts it, concurrent requests share it, and the value is cached
// on success. A waiter that gives up (request deadline, client gone) stops
// waiting immediately; when the LAST waiter abandons a still-running
// computation it is cancelled, so a multi-minute pipeline run never
// outlives all interest in it. Failed flights are cleared, so a later
// request retries instead of being poisoned by a bygone cancellation.
type flight struct {
	done    chan struct{}
	cancel  context.CancelFunc
	waiters int

	// res/err are written before done is closed (the close is the
	// happens-before edge), so readers need no lock after <-done.
	res *linkage.Result
	err error

	// persisted records whether this result is known to exist in the
	// snapshot store (loaded from it, or written through successfully).
	// Guarded by pairCache.mu; the recovery flush re-saves flights still
	// false after a degraded spell.
	persisted bool
}

// evoBundle is the series-wide evolution state derived from all pair
// results: the evolution graph, the per-person timelines and an index from
// record occurrence to the timelines traversing it.
type evoBundle struct {
	graph     *evolution.Graph
	timelines []evolution.Timeline
	// byRecord maps year|recordID to indices into timelines.
	byRecord map[recordKey][]int
	// edgesFrom indexes the graph's typed group edges by source vertex.
	edgesFrom map[evolution.GroupVertex][]evolution.GroupEdge
}

type recordKey struct {
	Year int
	ID   string
}

// index fills the bundle's derived indexes from its graph and timelines.
func (b *evoBundle) index() {
	b.byRecord = make(map[recordKey][]int)
	b.edgesFrom = make(map[evolution.GroupVertex][]evolution.GroupEdge)
	for ti, tl := range b.timelines {
		for _, e := range tl.Entries {
			k := recordKey{Year: e.Year, ID: e.RecordID}
			b.byRecord[k] = append(b.byRecord[k], ti)
		}
	}
	for _, e := range b.graph.GroupEdges {
		b.edgesFrom[e.From] = append(b.edgesFrom[e.From], e)
	}
}

// pairCache holds the single-flight slots: one per successive year pair,
// plus one for the evolution bundle (which depends on all pairs). The pairs
// slice only grows — ingest appends a completed flight for the new pair
// BEFORE swapping the series state, so any request holding the new state
// always finds its slot.
type pairCache struct {
	s *Server

	mu      sync.Mutex
	pairs   []*flight
	bundleF *bundleFlight
}

// bundleFlight is the single-flight slot of the evolution bundle, stamped
// with the series generation it was computed against: after an ingest the
// old flight no longer answers for the grown series, so bundle() starts a
// fresh one on a generation mismatch (unless ingest already installed the
// incrementally extended bundle).
type bundleFlight struct {
	done    chan struct{}
	cancel  context.CancelFunc
	waiters int
	gen     uint64
	bundle  *evoBundle
	err     error
}

func newPairCache(s *Server) *pairCache {
	return &pairCache{s: s, pairs: make([]*flight, len(s.cur().series.Pairs()))}
}

// completedFlight wraps an already-known result as a closed flight.
func completedFlight(res *linkage.Result, persisted bool) *flight {
	f := &flight{done: make(chan struct{}), cancel: func() {}, res: res, persisted: persisted}
	close(f.done)
	return f
}

// warmStart pre-fills the cache from the persistent store: every pair whose
// (config fingerprint, dataset hashes) address has a trusted snapshot gets a
// completed flight, so no request ever triggers its computation. Each pair
// is probed exactly once, here — compute never re-reads the store — so the
// store_hits/store_misses/store_corrupt counters partition the pairs.
func (c *pairCache) warmStart() {
	if c.s.store == nil {
		return
	}
	for i, pair := range c.s.cur().series.Pairs() {
		res, err := c.s.store.LoadResult(c.s.cfgHash, pair[0], pair[1])
		switch {
		case err != nil && isCorruptSnapshot(err):
			// A bad snapshot the store has quarantined (so the next replica
			// start sees a clean miss, not this counter again): recompute.
			c.s.stats.Add(obs.StoreCorrupt, 1)
		case err != nil:
			// The medium, not the file: feeds degraded-mode accounting.
			c.s.health.fail()
		case res == nil:
			c.s.stats.Add(obs.StoreMisses, 1)
			c.s.health.ok()
		default:
			c.s.stats.Add(obs.StoreHits, 1)
			c.s.health.ok()
			c.pairs[i] = completedFlight(res, true)
		}
	}
}

// cached reports how many pair results are computed and resident (for
// /healthz and /metrics).
func (c *pairCache) cached() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, f := range c.pairs {
		if f == nil {
			continue
		}
		select {
		case <-f.done:
			if f.err == nil {
				n++
			}
		default:
		}
	}
	return n
}

// appendPair grows the cache by one completed pair flight and, when the
// incrementally extended bundle is available, installs it as the new
// generation's completed bundle flight. Called by ingest with the new
// series state NOT yet swapped in: after this returns, the swap makes the
// new pair queryable with its result already resident.
func (c *pairCache) appendPair(res *linkage.Result, persisted bool, b *evoBundle, gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pairs = append(c.pairs, completedFlight(res, persisted))
	if b != nil {
		c.bundleF = &bundleFlight{
			done: make(chan struct{}), cancel: func() {}, gen: gen, bundle: b,
		}
		close(c.bundleF.done)
	}
	// When no extended bundle was derivable (the old one was never computed
	// or still in flight), the stale-generation flight is left in place:
	// bundle() notices the mismatch and rebuilds from scratch on demand.
}

// result returns the linkage result of pair i, computing it at most once.
// ctx is the requester's context: its deadline bounds only the wait — the
// computation itself runs under the server's base context (capped by
// ComputeTimeout) so one impatient client cannot kill a result another
// client is still waiting for, yet when every waiter is gone the
// computation is cancelled.
func (c *pairCache) result(ctx context.Context, i int) (*linkage.Result, error) {
	for {
		c.mu.Lock()
		f := c.pairs[i]
		if f == nil {
			fctx, cancel := context.WithCancel(c.s.baseCtx)
			f = &flight{done: make(chan struct{}), cancel: cancel}
			c.pairs[i] = f
			go c.compute(fctx, i, f)
		}
		f.waiters++
		c.mu.Unlock()

		select {
		case <-f.done:
			c.mu.Lock()
			f.waiters--
			c.mu.Unlock()
			// A flight cancelled by earlier waiters' abandonment (not by
			// this requester, whose ctx is still live, and not by server
			// shutdown) is nobody's answer: retry on a fresh flight — the
			// failed slot has already been cleared.
			if errors.Is(f.err, context.Canceled) && ctx.Err() == nil && !c.s.shuttingDown() {
				continue
			}
			return f.res, f.err
		case <-ctx.Done():
			c.mu.Lock()
			f.waiters--
			abandoned := f.waiters == 0
			c.mu.Unlock()
			if abandoned {
				f.cancel()
			}
			return nil, ctx.Err()
		}
	}
}

// compute runs one pair's linkage under the flight's context, bounded by
// the server-wide semaphore, and publishes the outcome. Pair indices are
// stable across ingests (years only append), so reading the current state's
// pair list is always consistent with slot i.
func (c *pairCache) compute(ctx context.Context, i int, f *flight) {
	defer f.cancel()
	pair := c.s.cur().series.Pairs()[i]
	var res *linkage.Result
	err := func() error {
		select {
		case c.s.sem <- struct{}{}:
		case <-ctx.Done():
			return ctx.Err()
		}
		defer func() { <-c.s.sem }()
		if c.s.computeTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, c.s.computeTimeout)
			defer cancel()
		}
		cfg := c.s.linkCfg
		cfg.Obs = c.s.stats
		var err error
		res, err = c.s.linkFn(ctx, pair[0], pair[1], cfg)
		return err
	}()
	persisted := false
	if err == nil && c.s.store != nil {
		// Write-through: persistence failures don't fail the request — the
		// result is good — but they are counted and feed the degraded-mode
		// state machine. While degraded the save is skipped outright (it
		// would burn its retry budget in the request path); the recovery
		// flush picks the flight up via persisted == false.
		if c.s.health.isDegraded() {
			// skip; flushUnpersisted will save it after recovery
		} else if serr := c.s.store.SaveResult(c.s.cfgHash, pair[0], pair[1], res); serr != nil {
			c.s.stats.Add(obs.StoreSaveErrors, 1)
			c.s.health.fail()
		} else {
			persisted = true
			c.s.health.ok()
		}
	}
	c.mu.Lock()
	f.res, f.err = res, err
	f.persisted = persisted
	if err != nil && c.pairs[i] == f {
		c.pairs[i] = nil // failed flights are not cached; retry later
	}
	c.mu.Unlock()
	close(f.done)
}

// allResults returns every pair result of the given series state, starting
// all missing computations concurrently (the semaphore still bounds the
// actual parallelism).
func (c *pairCache) allResults(ctx context.Context, st *seriesState) ([]*linkage.Result, error) {
	n := len(st.series.Pairs())
	results := make([]*linkage.Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.result(ctx, i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// bundle returns the evolution bundle of the CURRENT series generation,
// computing it (and any missing pair results) at most once, with the same
// single-flight and abandonment semantics as result. A flight stamped with
// an older generation — the series grew and ingest could not extend the
// bundle incrementally — is replaced by a fresh full build.
func (c *pairCache) bundle(ctx context.Context) (*evoBundle, error) {
	for {
		st := c.s.cur()
		c.mu.Lock()
		bf := c.bundleF
		if bf == nil || bf.gen != st.gen {
			bctx, cancel := context.WithCancel(c.s.baseCtx)
			bf = &bundleFlight{done: make(chan struct{}), cancel: cancel, gen: st.gen}
			c.bundleF = bf
			go c.computeBundle(bctx, st, bf)
		}
		bf.waiters++
		c.mu.Unlock()

		select {
		case <-bf.done:
			c.mu.Lock()
			bf.waiters--
			c.mu.Unlock()
			if errors.Is(bf.err, context.Canceled) && ctx.Err() == nil && !c.s.shuttingDown() {
				continue // inherited another waiter's abandonment; retry
			}
			return bf.bundle, bf.err
		case <-ctx.Done():
			c.mu.Lock()
			bf.waiters--
			abandoned := bf.waiters == 0
			c.mu.Unlock()
			if abandoned {
				bf.cancel()
			}
			return nil, ctx.Err()
		}
	}
}

func (c *pairCache) computeBundle(ctx context.Context, st *seriesState, bf *bundleFlight) {
	defer bf.cancel()
	bundle, err := func() (*evoBundle, error) {
		results, err := c.allResults(ctx, st)
		if err != nil {
			return nil, err
		}
		graph, err := evolution.BuildGraphContext(ctx, st.series, results, c.s.stats)
		if err != nil {
			return nil, err
		}
		b := &evoBundle{
			graph:     graph,
			timelines: graph.PersonTimelines(1),
		}
		b.index()
		return b, nil
	}()
	c.mu.Lock()
	bf.bundle, bf.err = bundle, err
	if err != nil && c.bundleF == bf {
		c.bundleF = nil // not cached; a later request retries
	}
	c.mu.Unlock()
	close(bf.done)
}

// currentBundle returns the completed bundle of the given generation if one
// is resident, without starting a computation. Ingest uses it to decide
// whether the evolution state can be extended incrementally.
func (c *pairCache) currentBundle(gen uint64) *evoBundle {
	c.mu.Lock()
	bf := c.bundleF
	c.mu.Unlock()
	if bf == nil || bf.gen != gen {
		return nil
	}
	select {
	case <-bf.done:
		if bf.err == nil {
			return bf.bundle
		}
	default:
	}
	return nil
}
