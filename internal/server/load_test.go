package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"censuslink/internal/census"
	"censuslink/internal/linkage"

	"censuslink/internal/server/api"
)

// TestConditionalGET: immutable linkage resources carry strong ETags
// derived from their content address, and a matching If-None-Match
// revalidates to an empty 304 — on a cache hit, without recomputing
// anything.
func TestConditionalGET(t *testing.T) {
	srv, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Abort()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	first := func(path string) (etag string) {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d: %s", path, resp.StatusCode, body)
		}
		etag = resp.Header.Get("ETag")
		if etag == "" || !strings.HasPrefix(etag, `"`) {
			t.Fatalf("GET %s: ETag = %q, want a strong quoted tag", path, etag)
		}
		return etag
	}
	revalidate := func(path, inm string) (int, string, string) {
		t.Helper()
		req, _ := http.NewRequest("GET", ts.URL+path, nil)
		req.Header.Set("If-None-Match", inm)
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body), resp.Header.Get("ETag")
	}

	// Pair-scoped and series-scoped resources all revalidate, after the
	// first request warmed the cache.
	for _, path := range []string{
		"/v1/links/1871/1881/records",
		"/v1/links/1871/1881/groups",
		"/v1/evolution/1871/1881/patterns",
		"/v1/timelines?min_span=2",
		"/v1/years",
	} {
		etag := first(path)
		status, body, etag2 := revalidate(path, etag)
		if status != http.StatusNotModified || body != "" {
			t.Errorf("GET %s revalidated: status %d body %q, want empty 304", path, status, body)
		}
		if etag2 != etag {
			t.Errorf("GET %s: 304 ETag %q != original %q", path, etag2, etag)
		}
	}

	// The validator covers the page window and filters: a different window
	// is a different representation with a different tag.
	base := first("/v1/links/1871/1881/records")
	windowed := first("/v1/links/1871/1881/records?limit=2")
	if base == windowed {
		t.Error("different page windows share an ETag")
	}
	// ...but query-parameter order does not matter.
	a := first("/v1/links/1871/1881/records?limit=2&offset=1")
	b := first("/v1/links/1871/1881/records?offset=1&limit=2")
	if a != b {
		t.Errorf("param order changed the ETag: %q vs %q", a, b)
	}

	// Mismatched tags still get the full body; list forms and weak-prefixed
	// copies of the right tag match.
	if status, _, _ := revalidate("/v1/years", `"deadbeef"`); status != http.StatusOK {
		t.Errorf("stale tag: status %d, want 200", status)
	}
	yearsTag := first("/v1/years")
	if status, _, _ := revalidate("/v1/years", `"nope", W/`+yearsTag); status != http.StatusNotModified {
		t.Errorf("list + weak form did not match")
	}
	if status, _, _ := revalidate("/v1/years", "*"); status != http.StatusNotModified {
		t.Errorf("wildcard did not match")
	}
}

// TestConditionalGETSkipsComputation: a revalidation of an immutable pair
// resource answers 304 from the content address alone — the pipeline is
// never invoked.
func TestConditionalGETSkipsComputation(t *testing.T) {
	ran := make(chan struct{}, 1)
	cfg := testConfig(t)
	cfg.linkFn = func(ctx context.Context, old, new *census.Dataset, lc linkage.Config) (*linkage.Result, error) {
		ran <- struct{}{}
		return linkage.LinkContext(ctx, old, new, lc)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Abort()

	// Prime the tag with one real request.
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/links/1871/1881/records", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("prime: %d %s", rec.Code, rec.Body)
	}
	<-ran
	etag := rec.Header().Get("ETag")

	req := httptest.NewRequest("GET", "/v1/links/1871/1881/records", nil)
	req.Header.Set("If-None-Match", etag)
	rec2 := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec2, req)
	if rec2.Code != http.StatusNotModified {
		t.Fatalf("revalidate: %d", rec2.Code)
	}
	select {
	case <-ran:
		t.Error("revalidation invoked the pipeline")
	default:
	}
}

// TestLoadShedding: with the in-flight cap saturated, excess API requests
// are shed with the typed 503 `overloaded` envelope and a Retry-After hint,
// while /healthz stays exempt and keeps answering.
func TestLoadShedding(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	cfg := testConfig(t)
	cfg.MaxInFlight = 1
	cfg.linkFn = func(ctx context.Context, old, new *census.Dataset, lc linkage.Config) (*linkage.Result, error) {
		once.Do(func() { close(started) })
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return linkage.LinkContext(ctx, old, new, lc)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Abort()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	firstDone := make(chan int, 1)
	go func() {
		resp, err := ts.Client().Get(ts.URL + "/v1/links/1871/1881/records")
		if err != nil {
			firstDone <- 0
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		firstDone <- resp.StatusCode
	}()
	<-started

	// The cap is full: the next API request is shed.
	resp, err := ts.Client().Get(ts.URL + "/v1/years")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed status = %d: %s, want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	var envelope api.ErrorEnvelope
	if err := json.Unmarshal(body, &envelope); err != nil || envelope.Error.Code != api.CodeOverloaded {
		t.Errorf("shed envelope = %s, want code %q", body, api.CodeOverloaded)
	}

	// Infrastructure endpoints are exempt.
	if status, _ := get(t, ts, "/healthz"); status != http.StatusOK {
		t.Errorf("healthz shed under load: %d", status)
	}

	close(release)
	if status := <-firstDone; status != http.StatusOK {
		t.Fatalf("first request finished %d, want 200", status)
	}

	// The shed decision is on /metrics.
	_, metrics := get(t, ts, "/metrics")
	if !strings.Contains(string(metrics), `censuslink_http_shed_total{endpoint="years",reason="overload"} 1`) {
		t.Errorf("/metrics missing shed counter:\n%s", metrics)
	}
}

// TestRateLimiting: a single client burning through its token bucket gets
// 429 `rate_limited` with Retry-After; the bucket refills over time.
func TestRateLimiting(t *testing.T) {
	cfg := testConfig(t)
	cfg.RateLimit = 0.5 // one token every 2s: the test never refills
	cfg.RateBurst = 2
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Abort()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < 2; i++ {
		if status, body := get(t, ts, "/v1/years"); status != http.StatusOK {
			t.Fatalf("request %d within burst: %d: %s", i, status, body)
		}
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/years")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget status = %d: %s, want 429", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("Retry-After = %q, want >= 1 second", ra)
	}
	var envelope api.ErrorEnvelope
	if err := json.Unmarshal(body, &envelope); err != nil || envelope.Error.Code != api.CodeRateLimited {
		t.Errorf("rate-limit envelope = %s, want code %q", body, api.CodeRateLimited)
	}
	// /metrics and /healthz are never rate limited.
	if status, _ := get(t, ts, "/healthz"); status != http.StatusOK {
		t.Errorf("healthz rate limited: %d", status)
	}
}

// TestTokenBuckets drives the limiter directly with a fake clock: burst
// spending, refill, Retry-After arithmetic and idle-bucket eviction.
func TestTokenBuckets(t *testing.T) {
	if newTokenBuckets(0, 5) != nil {
		t.Fatal("rate 0 should disable the limiter")
	}
	var nilLimiter *tokenBuckets
	if ok, _ := nilLimiter.allow("x"); !ok {
		t.Fatal("nil limiter must allow everything")
	}

	now := time.Unix(1000, 0)
	tb := newTokenBuckets(1, 2) // 1 token/s, burst 2
	tb.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if ok, _ := tb.allow("a"); !ok {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	ok, retry := tb.allow("a")
	if ok {
		t.Fatal("empty bucket allowed a request")
	}
	if retry <= 0 || retry > time.Second {
		t.Errorf("retry = %v, want (0, 1s]", retry)
	}
	// Another client is unaffected.
	if ok, _ := tb.allow("b"); !ok {
		t.Error("second client rejected by first client's bucket")
	}
	// Refill: one second restores one token.
	now = now.Add(time.Second)
	if ok, _ := tb.allow("a"); !ok {
		t.Error("bucket did not refill")
	}

	// Eviction: fully idle buckets are dropped when the table is at
	// capacity.
	tb.mu.Lock()
	tb.clients = map[string]*bucket{}
	for i := 0; i < maxTrackedClients; i++ {
		tb.clients[clientName(i)] = &bucket{tokens: 2, last: now.Add(-time.Hour)}
	}
	tb.mu.Unlock()
	if ok, _ := tb.allow("fresh"); !ok {
		t.Fatal("fresh client rejected at capacity")
	}
	tb.mu.Lock()
	n := len(tb.clients)
	tb.mu.Unlock()
	if n > 1 {
		t.Errorf("idle buckets not evicted: %d remain", n)
	}
}

func clientName(i int) string {
	return "client-" + strconv.Itoa(i)
}

// TestClientGoneCounted: a requester that disconnects mid-computation is
// recorded as client_gone (status 499, no body) instead of polluting the
// unavailable counters.
func TestClientGoneCounted(t *testing.T) {
	started := make(chan struct{})
	var once sync.Once
	cfg := testConfig(t)
	cfg.linkFn = func(ctx context.Context, old, new *census.Dataset, lc linkage.Config) (*linkage.Result, error) {
		once.Do(func() { close(started) })
		<-ctx.Done()
		return nil, ctx.Err()
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Abort()

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("GET", "/v1/links/1871/1881/records", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		srv.Handler().ServeHTTP(rec, req)
		close(done)
	}()
	<-started
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("request did not finish after client cancellation")
	}
	if rec.Code != api.StatusClientClosedRequest {
		t.Errorf("status = %d, want %d", rec.Code, api.StatusClientClosedRequest)
	}
	if rec.Body.Len() != 0 {
		t.Errorf("a body was written for a vanished client: %q", rec.Body)
	}

	mrec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(mrec, httptest.NewRequest("GET", "/metrics", nil))
	for _, want := range []string{
		`censuslink_http_client_gone_total{endpoint="record_links"} 1`,
		`censuslink_http_responses_total{endpoint="record_links",code="499"} 1`,
	} {
		if !strings.Contains(mrec.Body.String(), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// No unavailable (503) was recorded for the disconnect.
	if strings.Contains(mrec.Body.String(), `censuslink_http_responses_total{endpoint="record_links",code="503"}`) {
		t.Error("client disconnect counted as 503 unavailable")
	}
}

// TestWriteJSONMarshalFailure: an unencodable value never escapes as a
// truncated body under a success status — the whole response becomes a
// clean 500 envelope.
func TestWriteJSONMarshalFailure(t *testing.T) {
	rec := httptest.NewRecorder()
	api.WriteJSON(rec, http.StatusOK, map[string]any{"bad": make(chan int)})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	var envelope api.ErrorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &envelope); err != nil || envelope.Error.Code != api.CodeInternal {
		t.Fatalf("body = %q, want internal error envelope", rec.Body)
	}
}

// TestWriteListJSONEncodeFailures: a head-field failure is a clean 500; an
// item failure after the header is out aborts the connection (the handler
// panics with http.ErrAbortHandler) and is counted.
func TestWriteListJSONEncodeFailures(t *testing.T) {
	srv, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Abort()

	rec := httptest.NewRecorder()
	srv.writeList(rec, http.StatusOK,
		[]api.Field{{Name: "bad", Value: make(chan int)}}, "items", 0, func(int) any { return nil })
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("head failure status = %d, want 500", rec.Code)
	}

	rec2 := httptest.NewRecorder()
	func() {
		defer func() {
			if r := recover(); r != http.ErrAbortHandler {
				t.Errorf("recovered %v, want http.ErrAbortHandler", r)
			}
		}()
		srv.writeList(rec2, http.StatusOK, nil, "items", 1,
			func(int) any { return make(chan int) })
	}()
	if got := srv.requests.encodeErrors.Load(); got != 1 {
		t.Errorf("encode errors = %d, want 1", got)
	}

	// The happy path emits compact (un-indented), valid JSON.
	rec3 := httptest.NewRecorder()
	srv.writeList(rec3, http.StatusOK,
		[]api.Field{{Name: "n", Value: 2}}, "items", 2, func(i int) any { return i })
	if got := strings.TrimSpace(rec3.Body.String()); got != `{"n":2,"items":[0,1]}` {
		t.Errorf("stream = %q", got)
	}
}
