package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"censuslink/internal/linkage"
	"censuslink/internal/obs"
)

// storeDegradedAfter is how many consecutive store I/O failures flip the
// server into degraded mode. One failed operation is noise (a transient
// the store's own retry budget could not absorb); three in a row without a
// single success in between means the medium is down.
const storeDegradedAfter = 3

// refreshBackoffMax caps the degraded-mode probe backoff at this many
// refresh intervals, so recovery is noticed within a bounded delay.
const refreshBackoffMax = 8

// storeHealth is the degraded-mode state machine for the snapshot store.
//
//	healthy --(storeDegradedAfter consecutive I/O failures)--> degraded
//	degraded --(any successful store operation)--> healthy
//
// While degraded the server keeps answering every query from cache and
// pipeline — the store is an accelerator, never a dependency — but stops
// attempting write-throughs (each would eat its retry budget in the request
// path) and lets the refresh loop probe for recovery with backoff. The
// transition back to healthy is counted on obs.StoreRecoveries and triggers
// a flush of results computed while the store was away.
type storeHealth struct {
	stats *obs.Stats

	mu       sync.Mutex
	consec   int
	degraded bool
}

func newStoreHealth(stats *obs.Stats) *storeHealth {
	return &storeHealth{stats: stats}
}

// fail records one store I/O failure; it reports whether this failure
// flipped the state machine into degraded mode.
func (h *storeHealth) fail() (flipped bool) {
	h.stats.Add(obs.StoreIOErrors, 1)
	h.mu.Lock()
	defer h.mu.Unlock()
	h.consec++
	if !h.degraded && h.consec >= storeDegradedAfter {
		h.degraded = true
		return true
	}
	return false
}

// ok records one successful store operation; it reports whether this was
// the recovery out of degraded mode (counted on obs.StoreRecoveries).
func (h *storeHealth) ok() (recovered bool) {
	h.mu.Lock()
	h.consec = 0
	recovered = h.degraded
	h.degraded = false
	h.mu.Unlock()
	if recovered {
		h.stats.Add(obs.StoreRecoveries, 1)
	}
	return recovered
}

// isDegraded reports the current state.
func (h *storeHealth) isDegraded() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.degraded
}

// isCorruptSnapshot splits a ResultStore error into its two classes: a bad
// snapshot file (the store quarantines it and the pair is simply
// recomputed) versus the medium itself failing (feeds the degraded-mode
// state machine). *store.CorruptError carries the marker method; fakes in
// tests can carry it too.
func isCorruptSnapshot(err error) bool {
	var m interface{ IsCorruptSnapshot() bool }
	return errors.As(err, &m)
}

// refreshLoop runs until ctx is cancelled, refreshing the cache from the
// store every interval (see refreshOnce). While degraded it probes less
// often — doubling the skipped intervals up to refreshBackoffMax — so a
// down store is not hammered every tick, yet recovery is still noticed
// within a bounded delay.
func (c *pairCache) refreshLoop(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	backoff, skip := 1, 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		if skip > 0 {
			skip--
			continue
		}
		wasDegraded := c.s.health.isDegraded()
		c.refreshOnce(ctx)
		if c.s.health.isDegraded() {
			if wasDegraded && backoff < refreshBackoffMax {
				backoff *= 2
			}
			skip = backoff - 1
		} else {
			backoff, skip = 1, 0
		}
	}
}

// refreshOnce is one replica-refresh pass: probe the store, then adopt any
// snapshot another replica has written for a pair this server has not
// computed, installing it as a completed flight (counted on
// obs.StoreRefreshLoads). A successful pass while degraded is the recovery
// probe succeeding: the state machine flips back and every result computed
// during the outage is flushed to the store.
func (c *pairCache) refreshOnce(ctx context.Context) {
	if p, ok := c.s.store.(interface{ Ping() error }); ok {
		if err := p.Ping(); err != nil {
			c.s.health.fail()
			return
		}
	}
	ioFailed := false
	for i, pair := range c.s.cur().series.Pairs() {
		if ctx.Err() != nil {
			return
		}
		c.mu.Lock()
		occupied := c.pairs[i] != nil
		c.mu.Unlock()
		if occupied {
			// Cached, failed-and-cleared (nil again), or mid-compute: the
			// single-flight machinery owns this slot.
			continue
		}
		res, err := c.s.store.LoadResult(c.s.cfgHash, pair[0], pair[1])
		switch {
		case err != nil && isCorruptSnapshot(err):
			c.s.stats.Add(obs.StoreCorrupt, 1)
		case err != nil:
			c.s.health.fail()
			ioFailed = true
		case res == nil:
			// No replica has computed this pair yet.
		default:
			c.s.stats.Add(obs.StoreRefreshLoads, 1)
			c.install(i, res)
		}
	}
	if ioFailed {
		return
	}
	if recovered := c.s.health.ok(); recovered {
		c.flushUnpersisted()
	}
}

// install publishes a store-loaded result as a completed, persisted flight,
// unless a compute has claimed the slot in the meantime (that computation's
// own result then wins — it is byte-equivalent anyway, both being the
// deterministic pipeline's output for the same inputs).
func (c *pairCache) install(i int, res *linkage.Result) {
	f := &flight{done: make(chan struct{}), cancel: func() {}, res: res, persisted: true}
	close(f.done)
	c.mu.Lock()
	if c.pairs[i] == nil {
		c.pairs[i] = f
	}
	c.mu.Unlock()
}

// flushUnpersisted write-throughs every cached result that was computed
// while the store was degraded (its flight carries persisted == false).
// Called on recovery, so an outage never silently loses this replica's work
// for the rest of the fleet.
func (c *pairCache) flushUnpersisted() {
	type todo struct {
		i   int
		f   *flight
		res *linkage.Result
	}
	var flush []todo
	c.mu.Lock()
	for i, f := range c.pairs {
		if f == nil {
			continue
		}
		select {
		case <-f.done:
			if f.err == nil && f.res != nil && !f.persisted {
				flush = append(flush, todo{i: i, f: f, res: f.res})
			}
		default:
		}
	}
	c.mu.Unlock()
	for _, td := range flush {
		pair := c.s.cur().series.Pairs()[td.i]
		if err := c.s.store.SaveResult(c.s.cfgHash, pair[0], pair[1], td.res); err != nil {
			c.s.stats.Add(obs.StoreSaveErrors, 1)
			c.s.health.fail()
			return
		}
		c.s.health.ok()
		c.mu.Lock()
		td.f.persisted = true
		c.mu.Unlock()
	}
}
