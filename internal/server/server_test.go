package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"censuslink/internal/census"
	"censuslink/internal/linkage"
	"censuslink/internal/paperexample"

	"censuslink/internal/server/api"
)

// testSeries builds a three-census series by aging the running example one
// more decade, so the evolution graph has two pairs to chain.
func testSeries(t *testing.T) *census.Series {
	t.Helper()
	old, new := paperexample.Old(), paperexample.New()
	third := census.NewDataset(1891)
	for _, h := range new.Households() {
		nh := &census.Household{ID: strings.Replace(h.ID, "1881", "1891", 1)}
		if err := third.AddHousehold(nh); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range new.Records() {
		nr := *r
		nr.ID = strings.Replace(r.ID, "1881", "1891", 1)
		nr.HouseholdID = strings.Replace(r.HouseholdID, "1881", "1891", 1)
		nr.Age += 10
		if err := third.AddRecord(&nr); err != nil {
			t.Fatal(err)
		}
	}
	return census.NewSeries(old, new, third)
}

func testConfig(t *testing.T) Config {
	t.Helper()
	cfg := linkage.DefaultConfig()
	cfg.Workers = 1
	return Config{Series: testSeries(t), Linkage: cfg}
}

func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func getJSON(t *testing.T, ts *httptest.Server, path string, v any) {
	t.Helper()
	status, body := get(t, ts, path)
	if status != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, status, body)
	}
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("GET %s: bad JSON: %v\n%s", path, err, body)
	}
}

// TestServerEndpoints drives every query endpoint concurrently against a
// live httptest server: record links (with provenance), group links,
// evolution patterns, household timelines, record lifecycles and person
// timelines must all serve in parallel from the shared cache.
func TestServerEndpoints(t *testing.T) {
	srv, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Abort()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	paths := []string{
		"/api/years",
		"/api/links/1871/1881/records",
		"/api/links/1881/1891/records",
		"/api/links/1871/1881/groups",
		"/api/evolution/1871/1881/patterns",
		"/api/households/1871/1871_a/timeline",
		"/api/records/1871/1871_1/lifecycle",
		"/api/timelines?min_span=2",
		"/healthz",
	}
	var wg sync.WaitGroup
	errs := make(chan string, len(paths)*4)
	for round := 0; round < 4; round++ {
		for _, p := range paths {
			wg.Add(1)
			go func(p string) {
				defer wg.Done()
				status, body := get(t, ts, p)
				if status != http.StatusOK {
					errs <- fmt.Sprintf("GET %s: status %d: %s", p, status, body)
				}
			}(p)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	// Record links carry provenance; the running example has remainder links.
	// The same handler serves /v1 and the deprecated /api alias identically.
	var rl struct {
		OldYear int              `json:"old_year"`
		Page    api.Page         `json:"page"`
		Links   []recordLinkJSON `json:"record_links"`
	}
	getJSON(t, ts, "/v1/links/1871/1881/records", &rl)
	if rl.OldYear != 1871 || rl.Page.Total == 0 || rl.Page.Returned != len(rl.Links) {
		t.Fatalf("record links = %+v", rl)
	}
	kinds := map[string]int{}
	for _, l := range rl.Links {
		if l.Source == nil {
			t.Errorf("link %s->%s has no provenance", l.Old, l.New)
			continue
		}
		kinds[l.Source.Kind]++
		if l.Source.Kind == "subgraph" && l.Source.GroupOld == "" {
			t.Errorf("subgraph link %s->%s missing supporting group", l.Old, l.New)
		}
	}
	if kinds["subgraph"] == 0 || kinds["remainder"] == 0 {
		t.Errorf("source kinds = %v, want both subgraph and remainder", kinds)
	}

	// Filtering by record; the page total reflects the filtered list.
	var one struct {
		Page api.Page `json:"page"`
	}
	getJSON(t, ts, "/v1/links/1871/1881/records?record=1871_1", &one)
	if one.Page.Total != 1 {
		t.Errorf("filtered total = %d, want 1", one.Page.Total)
	}

	// Pagination: limit/offset windows tile the full list.
	var win struct {
		Page  api.Page         `json:"page"`
		Links []recordLinkJSON `json:"record_links"`
	}
	getJSON(t, ts, "/v1/links/1871/1881/records?limit=2&offset=1", &win)
	if win.Page.Limit != 2 || win.Page.Offset != 1 || win.Page.Total != rl.Page.Total {
		t.Errorf("page window = %+v", win.Page)
	}
	if len(win.Links) != 2 || win.Links[0].Old != rl.Links[1].Old || win.Links[1].Old != rl.Links[2].Old {
		t.Errorf("page slice = %+v, want links[1:3] of %+v", win.Links, rl.Links)
	}
	if status, body := get(t, ts, "/v1/links/1871/1881/records?limit=0"); status != http.StatusBadRequest {
		t.Errorf("limit=0: status %d: %s, want 400", status, body)
	}

	// The deprecated alias answers identically, plus migration headers.
	resp, err := ts.Client().Get(ts.URL + "/api/links/1871/1881/records")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("Deprecation") != "true" {
		t.Errorf("alias Deprecation header = %q, want true", resp.Header.Get("Deprecation"))
	}
	if link := resp.Header.Get("Link"); !strings.Contains(link, "/v1/links/1871/1881/records") {
		t.Errorf("alias Link header = %q, want successor /v1 path", link)
	}
	respV1, err := ts.Client().Get(ts.URL + "/v1/links/1871/1881/records")
	if err != nil {
		t.Fatal(err)
	}
	respV1.Body.Close()
	if respV1.Header.Get("Deprecation") != "" {
		t.Errorf("/v1 path carries a Deprecation header")
	}

	// Patterns carry counts plus the flattened, paginated event list.
	var pat struct {
		Counts       map[string]int     `json:"counts"`
		Page         api.Page           `json:"page"`
		Events       []patternEventJSON `json:"events"`
		Unclassified [][2]string        `json:"unclassified_links"`
	}
	getJSON(t, ts, "/v1/evolution/1871/1881/patterns", &pat)
	if pat.Counts["preserve_G"] == 0 {
		t.Errorf("pattern counts = %v, want preserved groups", pat.Counts)
	}
	if len(pat.Unclassified) != 0 {
		t.Errorf("unclassified = %v, want none from the pipeline", pat.Unclassified)
	}
	if pat.Page.Total != len(pat.Events) {
		t.Errorf("pattern events page = %+v with %d events", pat.Page, len(pat.Events))
	}
	byPattern := map[string]int{}
	for _, e := range pat.Events {
		byPattern[e.Pattern]++
	}
	for name, n := range pat.Counts {
		if byPattern[name] != n {
			t.Errorf("events carry %d %q, counts say %d", byPattern[name], name, n)
		}
	}

	// Household timeline has events leaving 1871_a.
	var tl struct {
		Events []hhEventJSON `json:"events"`
	}
	getJSON(t, ts, "/api/households/1871/1871_a/timeline", &tl)
	if len(tl.Events) == 0 {
		t.Error("household 1871_a has no timeline events")
	}
	for _, e := range tl.Events {
		if e.Pattern == "" || e.FromYear >= e.ToYear {
			t.Errorf("bad event %+v", e)
		}
	}

	// Record lifecycle traces John Ashworth through all three censuses.
	var lc struct {
		Name      string         `json:"name"`
		Timelines []timelineJSON `json:"timelines"`
	}
	getJSON(t, ts, "/api/records/1871/1871_1/lifecycle", &lc)
	if lc.Name != "john ashworth" {
		t.Errorf("lifecycle name = %q", lc.Name)
	}
	if len(lc.Timelines) == 0 || lc.Timelines[0].Span < 3 {
		t.Errorf("lifecycle timelines = %+v, want a span-3 chain", lc.Timelines)
	}

	// Unknown years and entities are 404s carrying the typed error envelope,
	// on /v1 and on the legacy aliases alike.
	for _, p := range []string{
		"/v1/links/1871/1901/records",
		"/v1/households/1871/nope/timeline",
		"/v1/records/1900/1871_1/lifecycle",
		"/api/links/1871/1901/records",
	} {
		status, body := get(t, ts, p)
		if status != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", p, status)
		}
		var envelope api.ErrorEnvelope
		if err := json.Unmarshal(body, &envelope); err != nil || envelope.Error.Code != api.CodeNotFound || envelope.Error.Message == "" {
			t.Errorf("GET %s: error envelope = %s", p, body)
		}
	}

	// /metrics exposes pipeline counters and server request counters.
	status, body := get(t, ts, "/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status %d", status)
	}
	for _, want := range []string{
		`censuslink_pipeline_total{name="record_links"}`,
		`censuslink_stage_seconds_total{stage="prematch"}`,
		`censuslink_http_requests_total{endpoint="record_links"}`,
		"censuslink_pairs_cached 2",
		"censuslink_http_in_flight",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestServerSingleFlight: N concurrent requests for the same (and the
// other) pair must trigger exactly one pipeline run per pair, and later
// requests must hit the cache without any further runs.
func TestServerSingleFlight(t *testing.T) {
	var runs atomic.Int64
	cfg := testConfig(t)
	cfg.linkFn = func(ctx context.Context, old, new *census.Dataset, lc linkage.Config) (*linkage.Result, error) {
		runs.Add(1)
		time.Sleep(20 * time.Millisecond) // widen the pile-up window
		return linkage.LinkContext(ctx, old, new, lc)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Abort()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		path := "/api/links/1871/1881/records"
		if i%2 == 1 {
			path = "/api/links/1881/1891/groups"
		}
		wg.Add(1)
		go func(p string) {
			defer wg.Done()
			if status, body := get(t, ts, p); status != http.StatusOK {
				t.Errorf("GET %s: %d: %s", p, status, body)
			}
		}(path)
	}
	wg.Wait()
	if got := runs.Load(); got != 2 {
		t.Fatalf("pipeline runs = %d, want 2 (one per pair)", got)
	}
	// Cache hits: no further runs.
	get(t, ts, "/api/links/1871/1881/records")
	get(t, ts, "/api/timelines")
	if got := runs.Load(); got != 2 {
		t.Errorf("pipeline runs after cache hits = %d, want 2", got)
	}
}

// TestServerRequestDeadlineAbandonsComputation: a request whose context
// dies while it is the only waiter must cancel the underlying pipeline run
// (the request-scoped deadline flows into the pipeline's checkpoints), and
// a later request must succeed on a fresh run.
func TestServerRequestDeadlineAbandonsComputation(t *testing.T) {
	started := make(chan struct{})
	cancelled := make(chan error, 1)
	var gate sync.Once
	cfg := testConfig(t)
	cfg.linkFn = func(ctx context.Context, old, new *census.Dataset, lc linkage.Config) (*linkage.Result, error) {
		var first bool
		gate.Do(func() { first = true })
		if first {
			close(started)
			<-ctx.Done() // stall until abandoned
			cancelled <- ctx.Err()
			return nil, ctx.Err()
		}
		return linkage.LinkContext(ctx, old, new, lc)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Abort()

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("GET", "/api/links/1871/1881/records", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		srv.Handler().ServeHTTP(rec, req)
		close(done)
	}()
	<-started
	cancel() // the only waiter gives up
	select {
	case err := <-cancelled:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("pipeline saw %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("abandonment did not cancel the pipeline run")
	}
	<-done

	// The failed flight is not cached: a fresh request recomputes and wins.
	req2 := httptest.NewRequest("GET", "/api/links/1871/1881/records", nil)
	rec2 := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec2, req2)
	if rec2.Code != http.StatusOK {
		t.Fatalf("retry after abandonment: status %d: %s", rec2.Code, rec2.Body)
	}
}

// TestServerComputeTimeout: a pair computation exceeding ComputeTimeout
// fails as a gateway timeout, not a hang.
func TestServerComputeTimeout(t *testing.T) {
	cfg := testConfig(t)
	cfg.ComputeTimeout = 10 * time.Millisecond
	cfg.linkFn = func(ctx context.Context, old, new *census.Dataset, lc linkage.Config) (*linkage.Result, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Abort()
	req := httptest.NewRequest("GET", "/api/links/1871/1881/records", nil)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Errorf("status = %d, want 504", rec.Code)
	}
}

// TestServerAbort: shutdown cancels in-flight computations promptly, the
// waiting request fails with 503, and /healthz flips to shutting_down.
func TestServerAbort(t *testing.T) {
	started := make(chan struct{})
	var once sync.Once
	cfg := testConfig(t)
	cfg.linkFn = func(ctx context.Context, old, new *census.Dataset, lc linkage.Config) (*linkage.Result, error) {
		once.Do(func() { close(started) })
		<-ctx.Done()
		return nil, ctx.Err()
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/api/links/1871/1881/records", nil))
		close(done)
	}()
	<-started
	srv.Abort()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("request did not drain after Abort")
	}
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("aborted request status = %d, want 503", rec.Code)
	}
	hrec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(hrec, httptest.NewRequest("GET", "/healthz", nil))
	if hrec.Code != http.StatusServiceUnavailable || !strings.Contains(hrec.Body.String(), "shutting_down") {
		t.Errorf("healthz after abort: %d %s", hrec.Code, hrec.Body)
	}
}

// TestServerPrecompute: eager startup fills every pair slot and the
// evolution bundle, so the first query is a pure cache hit.
func TestServerPrecompute(t *testing.T) {
	var runs atomic.Int64
	cfg := testConfig(t)
	cfg.linkFn = func(ctx context.Context, old, new *census.Dataset, lc linkage.Config) (*linkage.Result, error) {
		runs.Add(1)
		return linkage.LinkContext(ctx, old, new, lc)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Abort()
	if err := srv.Precompute(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("precompute runs = %d, want 2", got)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var h struct {
		PairsCached int `json:"pairs_cached"`
	}
	getJSON(t, ts, "/healthz", &h)
	if h.PairsCached != 2 {
		t.Errorf("pairs_cached = %d, want 2", h.PairsCached)
	}
	get(t, ts, "/api/timelines")
	if got := runs.Load(); got != 2 {
		t.Errorf("runs after warm queries = %d, want 2", got)
	}
}

// TestServerNew rejects unusable configurations.
func TestServerNew(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil series accepted")
	}
	one := census.NewSeries(paperexample.Old())
	if _, err := New(Config{Series: one, Linkage: linkage.DefaultConfig()}); err == nil {
		t.Error("single-census series accepted")
	}
	bad := linkage.DefaultConfig()
	bad.DeltaHigh, bad.DeltaLow = 0.4, 0.6
	if _, err := New(Config{Series: testSeries(t), Linkage: bad}); err == nil {
		t.Error("invalid linkage config accepted")
	}
}
