package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"mime"
	"net/http"
	"os"
	"strconv"
	"strings"

	"censuslink/internal/census"
	"censuslink/internal/evolution"
	"censuslink/internal/linkage"
	"censuslink/internal/obs"
	"censuslink/internal/server/api"
)

// Census-year arrival as an event: POST /v1/census accepts a newly released
// census — either the CSV itself (body, with ?year=) or a JSON reference
// {"path": ..., "year": ...} to a file the server can read — validates it
// against the served series, links ONLY the new (lastYear, newYear) pair
// (store-first, write-through, same semaphore and timeout as query-path
// computations), extends the evolution graph and timelines in place when
// they are resident (a Clone+AppendYear+ExtendTimelines, never a rebuild),
// persists the pair snapshot, atomically swaps the served series and bumps
// the whole ETag surface, then publishes the change-feed events. Ingests
// are serialized; concurrent uploads of the same year resolve to one 201
// and one 409.

// ingestResponseJSON is the 201 body: what was linked and what the series
// looks like now.
type ingestResponseJSON struct {
	Year        int            `json:"year"`
	OldYear     int            `json:"old_year"`
	Generation  uint64         `json:"generation"`
	Years       []int          `json:"years"`
	Records     int            `json:"records"`
	Households  int            `json:"households"`
	RecordLinks int            `json:"record_links"`
	GroupLinks  int            `json:"group_links"`
	Counts      map[string]int `json:"counts"`
	// Incremental reports whether the evolution graph was extended in place
	// (true) or left for a lazy rebuild (false: it was not resident).
	Incremental bool `json:"incremental"`
	// LastEventID is the final change-feed event published for this ingest;
	// a watcher that has seen it has seen the whole ingest.
	LastEventID uint64 `json:"last_event_id"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.shuttingDown() {
		api.Error(w, http.StatusServiceUnavailable, api.CodeUnavailable, "server is draining")
		return
	}
	next, apiErr := s.readIngestDataset(r)
	if apiErr != nil {
		apiErr.Write(w)
		return
	}

	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()

	st := s.cur()
	last := st.series.Datasets[len(st.series.Datasets)-1]
	if next.Year <= last.Year {
		status, code := http.StatusConflict, api.CodeConflict
		msg := fmt.Sprintf("census year %d is already covered by the served series %v", next.Year, st.series.Years())
		if st.series.Dataset(next.Year) == nil {
			msg = fmt.Sprintf("census year %d predates the series end %d: years must arrive in order", next.Year, last.Year)
		}
		api.Error(w, status, code, msg)
		return
	}

	res, persisted, err := s.linkNewPair(r.Context(), last, next)
	if err != nil {
		s.fail(w, r, err)
		return
	}

	// The pair analysis drives both the response summary and the watch
	// events; computing it before the swap keeps the swap itself cheap.
	analysis := evolution.Analyze(last, next, res)

	// Extend the resident evolution bundle incrementally when there is one.
	// The extension works on a clone, outside the cache lock: requests keep
	// reading the old bundle until the new one is installed whole.
	var extended *evoBundle
	if prev := s.cache.currentBundle(st.gen); prev != nil {
		g := prev.graph.Clone()
		if err := g.AppendYear(last, next, res); err != nil {
			s.fail(w, r, fmt.Errorf("extending evolution graph: %w", err))
			return
		}
		extended = &evoBundle{graph: g, timelines: g.ExtendTimelines(prev.timelines)}
		extended.index()
	}

	newSeries := census.NewSeries(append(append([]*census.Dataset{}, st.series.Datasets...), next)...)
	newState := newSeriesState(newSeries, st.gen+1)
	// Order matters: the cache slot (and extended bundle) must exist before
	// any request can observe the new state.
	s.cache.appendPair(res, persisted, extended, newState.gen)
	s.state.Store(newState)

	lastEventID := s.publishIngest(newState, analysis, res)

	w.Header().Set("Location", fmt.Sprintf("/v1/links/%d/%d/records", last.Year, next.Year))
	api.WriteJSON(w, http.StatusCreated, ingestResponseJSON{
		Year:        next.Year,
		OldYear:     last.Year,
		Generation:  newState.gen,
		Years:       newSeries.Years(),
		Records:     len(next.Records()),
		Households:  len(next.Households()),
		RecordLinks: len(res.RecordLinks),
		GroupLinks:  len(res.GroupLinks),
		Counts:      patternCounts(analysis),
		Incremental: extended != nil,
		LastEventID: lastEventID,
	})
}

// readIngestDataset parses the request into a census dataset. CSV bodies
// (text/csv, or anything that is not application/json) need ?year=; JSON
// bodies reference a server-readable file: {"path": "...", "year": 1891}.
func (s *Server) readIngestDataset(r *http.Request) (*census.Dataset, *api.Err) {
	ct, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if ct == "application/json" {
		var ref struct {
			Path string `json:"path"`
			Year int    `json:"year"`
		}
		if err := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20)).Decode(&ref); err != nil {
			return nil, &api.Err{Status: http.StatusBadRequest, Code: api.CodeBadRequest,
				Message: "bad JSON body: " + err.Error()}
		}
		if ref.Path == "" || ref.Year == 0 {
			return nil, &api.Err{Status: http.StatusBadRequest, Code: api.CodeBadRequest,
				Message: `JSON ingest needs {"path": "<csv file>", "year": <year>}`}
		}
		f, err := os.Open(ref.Path)
		if err != nil {
			return nil, &api.Err{Status: http.StatusBadRequest, Code: api.CodeBadRequest,
				Message: "cannot read referenced dataset: " + err.Error()}
		}
		defer f.Close()
		ds, err := census.ReadCSV(f, ref.Year)
		if err != nil {
			return nil, &api.Err{Status: http.StatusBadRequest, Code: api.CodeBadRequest,
				Message: fmt.Sprintf("parsing %s: %v", ref.Path, err)}
		}
		return ds, nil
	}

	yearStr := r.URL.Query().Get("year")
	if yearStr == "" {
		return nil, &api.Err{Status: http.StatusBadRequest, Code: api.CodeBadRequest,
			Message: "CSV ingest needs ?year=<census year>"}
	}
	year, err := strconv.Atoi(yearStr)
	if err != nil {
		return nil, &api.Err{Status: http.StatusBadRequest, Code: api.CodeBadRequest,
			Message: fmt.Sprintf("bad year %q", yearStr)}
	}
	body := http.MaxBytesReader(nil, r.Body, s.maxIngestBytes)
	ds, err := census.ReadCSV(body, year)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) || strings.Contains(err.Error(), "request body too large") {
			return nil, &api.Err{Status: http.StatusRequestEntityTooLarge, Code: api.CodeTooLarge,
				Message: fmt.Sprintf("upload exceeds the %d byte ingest cap", s.maxIngestBytes)}
		}
		return nil, &api.Err{Status: http.StatusBadRequest, Code: api.CodeBadRequest,
			Message: "parsing CSV: " + err.Error()}
	}
	return ds, nil
}

// linkNewPair produces the (last, next) linkage result the same way the
// query-path cache would: store-first, then the pipeline under the shared
// semaphore and compute timeout, then write-through (skipped while the
// store is degraded; the flight's persisted flag routes it to the recovery
// flush).
func (s *Server) linkNewPair(ctx context.Context, last, next *census.Dataset) (*linkage.Result, bool, error) {
	if s.store != nil {
		res, err := s.store.LoadResult(s.cfgHash, last, next)
		switch {
		case err != nil && isCorruptSnapshot(err):
			s.stats.Add(obs.StoreCorrupt, 1)
		case err != nil:
			s.health.fail()
		case res == nil:
			s.stats.Add(obs.StoreMisses, 1)
			s.health.ok()
		default:
			s.stats.Add(obs.StoreHits, 1)
			s.health.ok()
			return res, true, nil
		}
	}
	cctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	stop := context.AfterFunc(ctx, cancel) // requester gone: stop computing
	defer stop()
	select {
	case s.sem <- struct{}{}:
	case <-cctx.Done():
		return nil, false, cctx.Err()
	}
	defer func() { <-s.sem }()
	if s.computeTimeout > 0 {
		var tcancel context.CancelFunc
		cctx, tcancel = context.WithTimeout(cctx, s.computeTimeout)
		defer tcancel()
	}
	cfg := s.linkCfg
	cfg.Obs = s.stats
	res, err := s.linkFn(cctx, last, next, cfg)
	if err != nil {
		return nil, false, err
	}
	persisted := false
	if s.store != nil && !s.health.isDegraded() {
		if serr := s.store.SaveResult(s.cfgHash, last, next, res); serr != nil {
			s.stats.Add(obs.StoreSaveErrors, 1)
			s.health.fail()
		} else {
			persisted = true
			s.health.ok()
		}
	}
	return res, persisted, nil
}

// publishIngest emits the change-feed events of one ingest: the
// census_ingested summary first, then the new pair's household lifecycle
// transitions in batches. Returns the last published event ID.
func (s *Server) publishIngest(st *seriesState, a *evolution.PairAnalysis, res *linkage.Result) uint64 {
	last := s.watch.publish("census_ingested", ingestEventJSON{
		Schema:      watchEventSchema,
		Type:        "census_ingested",
		Year:        a.NewYear,
		OldYear:     a.OldYear,
		Generation:  st.gen,
		Years:       st.series.Years(),
		RecordLinks: len(res.RecordLinks),
		GroupLinks:  len(res.GroupLinks),
		Counts:      patternCounts(a),
	})
	transitions := patternEvents(a)
	batches := (len(transitions) + transitionBatchSize - 1) / transitionBatchSize
	for b := 0; b < batches; b++ {
		lo := b * transitionBatchSize
		hi := min(lo+transitionBatchSize, len(transitions))
		last = s.watch.publish("transitions", transitionsEventJSON{
			Schema:      watchEventSchema,
			Type:        "transitions",
			OldYear:     a.OldYear,
			NewYear:     a.NewYear,
			Generation:  st.gen,
			Batch:       b + 1,
			Batches:     batches,
			Transitions: transitions[lo:hi],
		})
	}
	return last
}
