package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// sseEvent is one parsed server-sent event frame.
type sseEvent struct {
	ID    uint64
	Event string
	Data  string
}

// readSSE parses frames off an event stream until n events arrive or the
// context expires.
func readSSE(t *testing.T, ctx context.Context, body *bufio.Reader, n int) []sseEvent {
	t.Helper()
	var events []sseEvent
	cur := sseEvent{}
	lines := make(chan string)
	errc := make(chan error, 1)
	go func() {
		for {
			line, err := body.ReadString('\n')
			if err != nil {
				errc <- err
				return
			}
			lines <- strings.TrimRight(line, "\n")
		}
	}()
	for len(events) < n {
		select {
		case line := <-lines:
			switch {
			case strings.HasPrefix(line, "id: "):
				id, err := strconv.ParseUint(line[4:], 10, 64)
				if err != nil {
					t.Fatalf("bad SSE id line %q", line)
				}
				cur.ID = id
			case strings.HasPrefix(line, "event: "):
				cur.Event = line[7:]
			case strings.HasPrefix(line, "data: "):
				cur.Data = line[6:]
			case line == "" && cur.Event != "":
				events = append(events, cur)
				cur = sseEvent{}
			}
		case err := <-errc:
			t.Fatalf("stream ended after %d/%d events: %v", len(events), n, err)
		case <-ctx.Done():
			t.Fatalf("timed out after %d/%d events", len(events), n)
		}
	}
	return events
}

// TestWatchSSEObservesIngest: a connected SSE subscriber sees the ingest's
// census_ingested summary followed by its transitions batches, with
// monotonic IDs and the versioned schema.
func TestWatchSSEObservesIngest(t *testing.T) {
	srv, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Abort()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/evolution/watch", nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	// Wait until the hub has registered the subscriber before ingesting.
	for {
		if n, _, _ := srv.watch.metrics(); n > 0 {
			break
		}
		select {
		case <-ctx.Done():
			t.Fatal("subscriber never registered")
		case <-time.After(5 * time.Millisecond):
		}
	}

	third := srv.cur().series.Dataset(1891)
	fourth := agedDataset(t, third, "1891", "1901", 1901)
	if status, body := postCSV(t, ts, 1901, csvBody(t, fourth)); status != http.StatusCreated {
		t.Fatalf("POST = %d: %s", status, body)
	}

	events := readSSE(t, ctx, bufio.NewReader(resp.Body), 2)
	if events[0].Event != "census_ingested" {
		t.Fatalf("first event = %q, want census_ingested", events[0].Event)
	}
	var ingested ingestEventJSON
	if err := json.Unmarshal([]byte(events[0].Data), &ingested); err != nil {
		t.Fatal(err)
	}
	if ingested.Schema != watchEventSchema || ingested.Year != 1901 || ingested.Generation != 1 {
		t.Errorf("census_ingested = %+v", ingested)
	}
	if events[1].Event != "transitions" {
		t.Fatalf("second event = %q, want transitions", events[1].Event)
	}
	var trans transitionsEventJSON
	if err := json.Unmarshal([]byte(events[1].Data), &trans); err != nil {
		t.Fatal(err)
	}
	if trans.Schema != watchEventSchema || trans.NewYear != 1901 || len(trans.Transitions) == 0 {
		t.Errorf("transitions = %+v", trans)
	}
	if events[1].ID <= events[0].ID {
		t.Errorf("event IDs not monotonic: %d then %d", events[0].ID, events[1].ID)
	}
}

// TestWatchLastEventIDResume: a reconnecting subscriber presenting
// Last-Event-ID receives exactly the retained events after it, in order.
func TestWatchLastEventIDResume(t *testing.T) {
	srv, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Abort()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 1; i <= 5; i++ {
		srv.watch.publish("test_event", map[string]int{"n": i})
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/evolution/watch", nil)
	req.Header.Set("Last-Event-ID", "2")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := readSSE(t, ctx, bufio.NewReader(resp.Body), 3)
	for i, ev := range events {
		if want := uint64(3 + i); ev.ID != want {
			t.Errorf("replayed event %d has ID %d, want %d", i, ev.ID, want)
		}
	}

	// The query-parameter form resumes identically (for clients that cannot
	// set headers).
	req2, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/evolution/watch?last_event_id=4", nil)
	resp2, err := ts.Client().Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	events2 := readSSE(t, ctx, bufio.NewReader(resp2.Body), 1)
	if events2[0].ID != 5 {
		t.Errorf("query-param resume replayed ID %d, want 5", events2[0].ID)
	}
}

// TestWatchHubRingAndEviction: hub-level semantics — the replay ring keeps
// only the newest events, and a subscriber that stops draining is evicted
// (channel closed, eviction counted) instead of stalling the feed.
func TestWatchHubRingAndEviction(t *testing.T) {
	hub := newWatchHub(3)
	for i := 1; i <= 5; i++ {
		hub.publish("e", i)
	}
	if got := hub.lastID(); got != 5 {
		t.Fatalf("lastID = %d", got)
	}
	// Only the last ringCap events are retained for resume.
	if backlog := hub.eventsAfter(0); len(backlog) != 3 || backlog[0].ID != 3 {
		t.Fatalf("retained ring = %+v, want IDs 3..5", backlog)
	}

	// A subscriber that never drains overflows its channel and is dropped.
	sub, _ := hub.subscribe(5)
	for i := 0; i < subscriberBuffer+1; i++ {
		hub.publish("e", i)
	}
	if _, _, evictions := hub.metrics(); evictions != 1 {
		t.Errorf("evictions = %d, want 1", evictions)
	}
	if subs, _, _ := hub.metrics(); subs != 0 {
		t.Errorf("evicted subscriber still registered")
	}
	// Drain to the close: the channel delivers what fit, then reports closed
	// so the serving goroutine ends the stream and the client reconnects.
	n := 0
	for range sub.ch {
		n++
	}
	if n != subscriberBuffer {
		t.Errorf("drained %d events before close, want %d", n, subscriberBuffer)
	}
	if !sub.evicted {
		t.Error("evicted flag not set")
	}
}

// TestWatchOrderingUnderConcurrentIngest: concurrent POSTs of the same new
// year resolve to exactly one 201 and one 409, and the feed carries exactly
// one ingest's events with strictly increasing IDs.
func TestWatchOrderingUnderConcurrentIngest(t *testing.T) {
	srv, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Abort()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	third := srv.cur().series.Dataset(1891)
	body := csvBody(t, agedDataset(t, third, "1891", "1901", 1901))
	statuses := make([]int, 2)
	var wg sync.WaitGroup
	for i := range statuses {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], _ = postCSV(t, ts, 1901, body)
		}(i)
	}
	wg.Wait()
	if !(statuses[0] == http.StatusCreated && statuses[1] == http.StatusConflict) &&
		!(statuses[0] == http.StatusConflict && statuses[1] == http.StatusCreated) {
		t.Fatalf("concurrent same-year ingests = %v, want one 201 and one 409", statuses)
	}

	// A second, later year keeps the feed ordered: generations 1 then 2,
	// IDs strictly increasing across the whole feed.
	fourth := srv.cur().series.Dataset(1901)
	if status, b := postCSV(t, ts, 1911, csvBody(t, agedDataset(t, fourth, "1901", "1911", 1911))); status != http.StatusCreated {
		t.Fatalf("second ingest = %d: %s", status, b)
	}
	events := srv.watch.eventsAfter(0)
	var lastID uint64
	var gens []uint64
	for _, ev := range events {
		if ev.ID <= lastID {
			t.Fatalf("event IDs not strictly increasing: %d after %d", ev.ID, lastID)
		}
		lastID = ev.ID
		if ev.Name == "census_ingested" {
			var ing ingestEventJSON
			if err := json.Unmarshal(ev.Data, &ing); err != nil {
				t.Fatal(err)
			}
			gens = append(gens, ing.Generation)
		}
	}
	if len(gens) != 2 || gens[0] != 1 || gens[1] != 2 {
		t.Errorf("census_ingested generations = %v, want [1 2]", gens)
	}
}

// TestWatchLongPoll: the ?mode=poll fallback returns pending events
// immediately, parks up to ?wait= when there are none, and resumes from
// ?after= with the same IDs the stream would deliver.
func TestWatchLongPoll(t *testing.T) {
	srv, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Abort()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	type pollResponse struct {
		Events []struct {
			ID    uint64          `json:"id"`
			Event string          `json:"event"`
			Data  json.RawMessage `json:"data"`
		} `json:"events"`
		LastID uint64 `json:"last_id"`
	}

	// Empty feed: immediate empty answer.
	var empty pollResponse
	getJSON(t, ts, "/v1/evolution/watch?mode=poll", &empty)
	if len(empty.Events) != 0 || empty.LastID != 0 {
		t.Fatalf("empty poll = %+v", empty)
	}

	// A parked poll is woken by a publish.
	done := make(chan pollResponse, 1)
	go func() {
		var r pollResponse
		getJSON(t, ts, "/v1/evolution/watch?mode=poll&wait=10s", &r)
		done <- r
	}()
	// Give the poll a moment to park, then publish.
	time.Sleep(50 * time.Millisecond)
	srv.watch.publish("test_event", map[string]string{"k": "v"})
	select {
	case r := <-done:
		if len(r.Events) == 0 || r.Events[0].Event != "test_event" {
			t.Fatalf("woken poll = %+v", r)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("parked poll never woke")
	}

	// Resume from after: only newer events.
	srv.watch.publish("test_event", map[string]string{"k": "v2"})
	var more pollResponse
	getJSON(t, ts, fmt.Sprintf("/v1/evolution/watch?mode=poll&after=%d", 1), &more)
	if len(more.Events) != 1 || more.Events[0].ID != 2 {
		t.Fatalf("after=1 poll = %+v", more)
	}
	if more.LastID != 2 {
		t.Errorf("last_id = %d, want 2", more.LastID)
	}

	// Malformed resume points are 400s.
	if status, _ := get(t, ts, "/v1/evolution/watch?mode=poll&after=x"); status != http.StatusBadRequest {
		t.Errorf("bad after = %d, want 400", status)
	}
	if status, _ := get(t, ts, "/v1/evolution/watch?mode=poll&wait=x"); status != http.StatusBadRequest {
		t.Errorf("bad wait = %d, want 400", status)
	}
}

// TestOpenAPIDocument: the generated document describes every registered
// route, marks the stream and the deprecated offset parameter, and serves
// under a validator like everything else.
func TestOpenAPIDocument(t *testing.T) {
	srv, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Abort()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, body := get(t, ts, "/v1/openapi.json")
	if status != http.StatusOK {
		t.Fatalf("openapi = %d", status)
	}
	var doc struct {
		OpenAPI string                                `json:"openapi"`
		Paths   map[string]map[string]json.RawMessage `json:"paths"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(doc.OpenAPI, "3.") {
		t.Errorf("openapi version = %q", doc.OpenAPI)
	}
	for _, rt := range srv.apiRoutes {
		ops, ok := doc.Paths["/v1"+rt.path]
		if !ok {
			t.Errorf("route %s missing from document", rt.path)
			continue
		}
		if _, ok := ops[strings.ToLower(rt.method)]; !ok {
			t.Errorf("route %s missing %s operation", rt.path, rt.method)
		}
	}
	if !bytes.Contains(body, []byte(`"x-streaming":true`)) {
		t.Error("watch route not marked x-streaming")
	}
	if !bytes.Contains(body, []byte(`"deprecated":true`)) {
		t.Error("offset parameter not marked deprecated")
	}
}
