package server

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"censuslink/internal/obs"
)

// requestCounters tracks per-endpoint request totals for /metrics.
type requestCounters struct {
	mu     sync.Mutex
	counts map[string]int64
}

func newRequestCounters() *requestCounters {
	return &requestCounters{counts: make(map[string]int64)}
}

func (c *requestCounters) inc(endpoint string) {
	c.mu.Lock()
	c.counts[endpoint]++
	c.mu.Unlock()
}

// snapshot returns the endpoint names sorted with their counts.
func (c *requestCounters) snapshot() ([]string, map[string]int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.counts))
	out := make(map[string]int64, len(c.counts))
	for n, v := range c.counts {
		names = append(names, n)
		out[n] = v
	}
	sort.Strings(names)
	return names, out
}

// counted wraps a handler with the request counter and in-flight gauge.
func (s *Server) counted(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.inc(endpoint)
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		h(w, r)
	}
}

// handleMetrics exports the pipeline's obs collector (counters, stage
// timings, iteration count) plus the server's own request metrics in
// Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := obs.WritePrometheus(w, s.stats.Report()); err != nil {
		return
	}
	names, counts := s.requests.snapshot()
	fmt.Fprintf(w, "# HELP censuslink_http_requests_total HTTP requests served per endpoint.\n# TYPE censuslink_http_requests_total counter\n")
	for _, n := range names {
		fmt.Fprintf(w, "censuslink_http_requests_total{endpoint=%q} %d\n", n, counts[n])
	}
	fmt.Fprintf(w, "# HELP censuslink_http_in_flight HTTP requests currently being served.\n# TYPE censuslink_http_in_flight gauge\ncensuslink_http_in_flight %d\n", s.inflight.Load())
	fmt.Fprintf(w, "# HELP censuslink_pairs_cached Year-pair linkage results resident in the cache.\n# TYPE censuslink_pairs_cached gauge\ncensuslink_pairs_cached %d\n", s.cache.cached())
	fmt.Fprintf(w, "# HELP censuslink_uptime_seconds Seconds since the server started.\n# TYPE censuslink_uptime_seconds gauge\ncensuslink_uptime_seconds %g\n", time.Since(s.started).Seconds())
}
