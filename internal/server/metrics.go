package server

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"censuslink/internal/obs"
	"censuslink/internal/server/api"
)

// requestCounters tracks per-endpoint request totals, per-status response
// counts, shed decisions and latency histograms for /metrics.
type requestCounters struct {
	mu     sync.Mutex
	counts map[string]int64
	// status counts finished responses by endpoint and HTTP status code;
	// statusClientClosedRequest entries double as the client_gone counter.
	status map[string]map[int]int64
	// shed counts rejected requests by endpoint and reason
	// ("overload" | "rate_limit").
	shedCounts map[string]map[string]int64
	// latency holds one fixed-bucket histogram of response seconds per
	// endpoint.
	latency map[string]*obs.Histogram
	// encodeErrors counts JSON items that failed to encode after the
	// response header was committed (the connection is aborted instead of
	// finishing a broken body under a 200).
	encodeErrors atomic.Int64
}

func newRequestCounters() *requestCounters {
	return &requestCounters{
		counts:     make(map[string]int64),
		status:     make(map[string]map[int]int64),
		shedCounts: make(map[string]map[string]int64),
		latency:    make(map[string]*obs.Histogram),
	}
}

func (c *requestCounters) inc(endpoint string) {
	c.mu.Lock()
	c.counts[endpoint]++
	c.mu.Unlock()
}

// observe records one finished response: its status code and latency.
func (c *requestCounters) observe(endpoint string, status int, d time.Duration) {
	c.mu.Lock()
	byStatus := c.status[endpoint]
	if byStatus == nil {
		byStatus = make(map[int]int64)
		c.status[endpoint] = byStatus
	}
	byStatus[status]++
	h := c.latency[endpoint]
	if h == nil {
		h = obs.NewHistogram(nil)
		c.latency[endpoint] = h
	}
	c.mu.Unlock()
	h.ObserveDuration(d)
}

// shed records one rejected request and its reason.
func (c *requestCounters) shed(endpoint, reason string) {
	c.mu.Lock()
	byReason := c.shedCounts[endpoint]
	if byReason == nil {
		byReason = make(map[string]int64)
		c.shedCounts[endpoint] = byReason
	}
	byReason[reason]++
	c.mu.Unlock()
}

// snapshot returns the endpoint names sorted with their request counts.
func (c *requestCounters) snapshot() ([]string, map[string]int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.counts))
	out := make(map[string]int64, len(c.counts))
	for n, v := range c.counts {
		names = append(names, n)
		out[n] = v
	}
	sort.Strings(names)
	return names, out
}

// export copies the status, shed and latency state for rendering.
func (c *requestCounters) export() (statuses map[string]map[int]int64, sheds map[string]map[string]int64, hists map[string]obs.HistogramSnapshot) {
	c.mu.Lock()
	defer c.mu.Unlock()
	statuses = make(map[string]map[int]int64, len(c.status))
	for e, m := range c.status {
		cp := make(map[int]int64, len(m))
		for code, v := range m {
			cp[code] = v
		}
		statuses[e] = cp
	}
	sheds = make(map[string]map[string]int64, len(c.shedCounts))
	for e, m := range c.shedCounts {
		cp := make(map[string]int64, len(m))
		for reason, v := range m {
			cp[reason] = v
		}
		sheds[e] = cp
	}
	hists = make(map[string]obs.HistogramSnapshot, len(c.latency))
	for e, h := range c.latency {
		hists[e] = h.Snapshot()
	}
	return statuses, sheds, hists
}

// statusWriter captures the response status code for the per-endpoint
// counters; a handler that never calls WriteHeader committed an implicit
// 200 on first write.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (sw *statusWriter) WriteHeader(code int) {
	if !sw.wrote {
		sw.status = code
		sw.wrote = true
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if !sw.wrote {
		sw.status = http.StatusOK
		sw.wrote = true
	}
	return sw.ResponseWriter.Write(p)
}

// Flush forwards to the underlying writer so streamed responses keep
// flushing through the wrapper.
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the underlying writer, so the
// watch stream can clear the server's write deadline through this wrapper.
func (sw *statusWriter) Unwrap() http.ResponseWriter {
	return sw.ResponseWriter
}

// counted wraps a handler with the request counter, the in-flight gauge,
// status capture and the per-endpoint latency histogram. The observation
// runs in a defer so even a handler aborted mid-stream (http.ErrAbortHandler)
// is counted.
func (s *Server) counted(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.inc(endpoint)
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		defer func() {
			s.requests.observe(endpoint, sw.status, time.Since(start))
		}()
		h(sw, r)
	}
}

// handleMetrics exports the pipeline's obs collector (counters, stage
// timings, iteration count) plus the server's own request metrics —
// per-endpoint totals, per-status response counts, shed counts, the
// client-gone tally and latency histograms — in Prometheus text exposition
// format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := obs.WritePrometheus(w, s.stats.Report()); err != nil {
		return
	}
	names, counts := s.requests.snapshot()
	fmt.Fprintf(w, "# HELP censuslink_http_requests_total HTTP requests served per endpoint.\n# TYPE censuslink_http_requests_total counter\n")
	for _, n := range names {
		fmt.Fprintf(w, "censuslink_http_requests_total{endpoint=%q} %d\n", n, counts[n])
	}

	statuses, sheds, hists := s.requests.export()

	fmt.Fprintf(w, "# HELP censuslink_http_responses_total Finished responses per endpoint and status code.\n# TYPE censuslink_http_responses_total counter\n")
	for _, e := range sortedKeys(statuses) {
		codes := make([]int, 0, len(statuses[e]))
		for code := range statuses[e] {
			codes = append(codes, code)
		}
		sort.Ints(codes)
		for _, code := range codes {
			fmt.Fprintf(w, "censuslink_http_responses_total{endpoint=%q,code=\"%d\"} %d\n", e, code, statuses[e][code])
		}
	}
	fmt.Fprintf(w, "# HELP censuslink_http_client_gone_total Requests whose client disconnected before the response.\n# TYPE censuslink_http_client_gone_total counter\n")
	for _, e := range sortedKeys(statuses) {
		if n := statuses[e][api.StatusClientClosedRequest]; n > 0 {
			fmt.Fprintf(w, "censuslink_http_client_gone_total{endpoint=%q} %d\n", e, n)
		}
	}
	if len(sheds) > 0 {
		fmt.Fprintf(w, "# HELP censuslink_http_shed_total Requests rejected by the load-shedding gates.\n# TYPE censuslink_http_shed_total counter\n")
		for _, e := range sortedKeys(sheds) {
			for _, reason := range sortedKeys(sheds[e]) {
				fmt.Fprintf(w, "censuslink_http_shed_total{endpoint=%q,reason=%q} %d\n", e, reason, sheds[e][reason])
			}
		}
	}
	if len(hists) > 0 {
		fmt.Fprintf(w, "# HELP censuslink_http_request_seconds Response latency per endpoint.\n# TYPE censuslink_http_request_seconds histogram\n")
		for _, e := range sortedKeys(hists) {
			obs.WriteHistogram(w, "censuslink_http_request_seconds", fmt.Sprintf("endpoint=%q", e), hists[e])
		}
	}
	fmt.Fprintf(w, "# HELP censuslink_http_encode_errors_total Response bodies aborted because an item failed to encode mid-stream.\n# TYPE censuslink_http_encode_errors_total counter\ncensuslink_http_encode_errors_total %d\n", s.requests.encodeErrors.Load())
	fmt.Fprintf(w, "# HELP censuslink_http_in_flight HTTP requests currently being served.\n# TYPE censuslink_http_in_flight gauge\ncensuslink_http_in_flight %d\n", s.inflight.Load())
	fmt.Fprintf(w, "# HELP censuslink_pairs_cached Year-pair linkage results resident in the cache.\n# TYPE censuslink_pairs_cached gauge\ncensuslink_pairs_cached %d\n", s.cache.cached())
	if s.store != nil {
		degraded := 0
		if s.health.isDegraded() {
			degraded = 1
		}
		fmt.Fprintf(w, "# HELP censuslink_store_degraded Whether the snapshot store is in degraded mode (serving continues from cache).\n# TYPE censuslink_store_degraded gauge\ncensuslink_store_degraded %d\n", degraded)
	}
	subs, published, evictions := s.watch.metrics()
	fmt.Fprintf(w, "# HELP censuslink_watch_subscribers Change-feed subscribers currently connected.\n# TYPE censuslink_watch_subscribers gauge\ncensuslink_watch_subscribers %d\n", subs)
	fmt.Fprintf(w, "# HELP censuslink_watch_events_total Change-feed events published since startup.\n# TYPE censuslink_watch_events_total counter\ncensuslink_watch_events_total %d\n", published)
	fmt.Fprintf(w, "# HELP censuslink_watch_evictions_total Subscribers evicted for not keeping up with the feed.\n# TYPE censuslink_watch_evictions_total counter\ncensuslink_watch_evictions_total %d\n", evictions)
	st := s.cur()
	fmt.Fprintf(w, "# HELP censuslink_series_generation Ingested census years since startup.\n# TYPE censuslink_series_generation gauge\ncensuslink_series_generation %d\n", st.gen)
	fmt.Fprintf(w, "# HELP censuslink_series_years Census years currently served.\n# TYPE censuslink_series_years gauge\ncensuslink_series_years %d\n", len(st.series.Datasets))
	fmt.Fprintf(w, "# HELP censuslink_uptime_seconds Seconds since the server started.\n# TYPE censuslink_uptime_seconds gauge\ncensuslink_uptime_seconds %g\n", time.Since(s.started).Seconds())
}

// sortedKeys returns a map's string keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
