package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"censuslink/internal/census"
	"censuslink/internal/linkage"
	"censuslink/internal/obs"
	"censuslink/internal/store"

	"censuslink/internal/server/api"
)

// populateStore links every pair of the series once, directly, and writes
// the snapshots — the state a previous server run would have left behind.
func populateStore(t *testing.T, dir string, series *census.Series, cfg linkage.Config) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfgHash := cfg.Fingerprint()
	for _, pair := range series.Pairs() {
		res, err := linkage.LinkContext(context.Background(), pair[0], pair[1], cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.SaveResult(cfgHash, pair[0], pair[1], res); err != nil {
			t.Fatal(err)
		}
	}
}

// TestServerWarmStartFromStore: a server booted over a fully populated
// store must answer every endpoint — including the evolution bundle —
// without running the pipeline once, and report the warm pairs on /healthz
// and the hit counters on /metrics.
func TestServerWarmStartFromStore(t *testing.T) {
	cfg := testConfig(t)
	dir := t.TempDir()
	populateStore(t, dir, cfg.Series, cfg.Linkage)

	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = st
	cfg.linkFn = func(ctx context.Context, old, new *census.Dataset, lc linkage.Config) (*linkage.Result, error) {
		t.Errorf("pipeline invoked for %d-%d despite a warm store", old.Year, new.Year)
		return nil, errors.New("must not compute")
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Abort()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var h struct {
		PairsCached int `json:"pairs_cached"`
	}
	getJSON(t, ts, "/healthz", &h)
	if want := len(cfg.Series.Pairs()); h.PairsCached != want {
		t.Errorf("pairs_cached = %d at boot, want %d", h.PairsCached, want)
	}

	// Every query class must serve from the warmed cache, including the
	// bundle-backed endpoints that need all pair results at once.
	for _, p := range []string{
		"/v1/links/1871/1881/records",
		"/v1/links/1881/1891/records",
		"/v1/links/1871/1881/groups",
		"/v1/evolution/1871/1881/patterns",
		"/v1/households/1871/1871_a/timeline",
		"/v1/records/1871/1871_1/lifecycle",
		"/v1/timelines?min_span=2",
	} {
		if status, body := get(t, ts, p); status != http.StatusOK {
			t.Errorf("GET %s: status %d: %s", p, status, body)
		}
	}

	var rl struct {
		Page api.Page `json:"page"`
	}
	getJSON(t, ts, "/v1/links/1871/1881/records", &rl)
	if rl.Page.Total == 0 {
		t.Error("warm-started pair served no record links")
	}

	_, body := get(t, ts, "/metrics")
	for _, want := range []string{
		`censuslink_pipeline_total{name="store_hits"} 2`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if strings.Contains(string(body), `name="store_misses"`) {
		t.Error("/metrics reports store misses on a fully warm store")
	}
}

// TestServerWriteBackThenWarmStart: a server over an empty store computes
// and persists each pair it serves; a second server booted over the same
// directory serves them without computing — the restart round trip.
func TestServerWriteBackThenWarmStart(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	cfg := testConfig(t)
	cfg.Store = st
	stats := obs.NewStats(nil)
	cfg.Stats = stats
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	if status, body := get(t, ts, "/v1/links/1871/1881/records"); status != http.StatusOK {
		t.Fatalf("first server: status %d: %s", status, body)
	}
	ts.Close()
	srv.Abort()
	if got := stats.Total(obs.StoreMisses); got != int64(len(cfg.Series.Pairs())) {
		t.Errorf("first server store misses = %d, want %d", got, len(cfg.Series.Pairs()))
	}

	snaps, err := filepath.Glob(filepath.Join(dir, "snap_*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 {
		names, _ := os.ReadDir(dir)
		t.Fatalf("store holds %d snapshots after one pair was served, want 1 (%v)", len(snaps), names)
	}

	cfg2 := testConfig(t)
	cfg2.Store = st
	stats2 := obs.NewStats(nil)
	cfg2.Stats = stats2
	cfg2.linkFn = func(ctx context.Context, old, new *census.Dataset, lc linkage.Config) (*linkage.Result, error) {
		if old.Year == 1871 {
			t.Errorf("pair 1871-1881 recomputed despite its snapshot")
		}
		return linkage.LinkContext(ctx, old, new, lc)
	}
	srv2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Abort()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	if status, body := get(t, ts2, "/v1/links/1871/1881/records"); status != http.StatusOK {
		t.Fatalf("second server: status %d: %s", status, body)
	}
	if got := stats2.Total(obs.StoreHits); got != 1 {
		t.Errorf("second server store hits = %d, want 1", got)
	}
	// The unlinked pair is a miss; querying it computes and writes it back.
	if got := stats2.Total(obs.StoreMisses); got != 1 {
		t.Errorf("second server store misses = %d, want 1", got)
	}
	if status, body := get(t, ts2, "/v1/links/1881/1891/records"); status != http.StatusOK {
		t.Fatalf("second server pair 2: status %d: %s", status, body)
	}
	snaps, err = filepath.Glob(filepath.Join(dir, "snap_*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Errorf("store holds %d snapshots after both pairs were served, want 2", len(snaps))
	}
}

// TestServerCorruptSnapshotRecomputed: a damaged snapshot must not poison
// the boot — the pair is counted corrupt, recomputed on demand and
// overwritten with a fresh snapshot.
func TestServerCorruptSnapshotRecomputed(t *testing.T) {
	cfg := testConfig(t)
	dir := t.TempDir()
	populateStore(t, dir, cfg.Series, cfg.Linkage)
	snaps, err := filepath.Glob(filepath.Join(dir, "snap_*.jsonl"))
	if err != nil || len(snaps) == 0 {
		t.Fatalf("snapshots = %v, %v", snaps, err)
	}
	for _, p := range snaps {
		if err := os.WriteFile(p, []byte("garbage, no newline"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = st
	stats := obs.NewStats(nil)
	cfg.Stats = stats
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Abort()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if got := stats.Total(obs.StoreCorrupt); got != int64(len(cfg.Series.Pairs())) {
		t.Errorf("store corrupt counter = %d at boot, want %d", got, len(cfg.Series.Pairs()))
	}
	if status, body := get(t, ts, "/v1/links/1871/1881/records"); status != http.StatusOK {
		t.Fatalf("status %d after corrupt snapshot: %s", status, body)
	}
	// The served pair was recomputed and written back as a valid snapshot.
	res, err := st.LoadResult(cfg.Linkage.Fingerprint(), cfg.Series.Pairs()[0][0], cfg.Series.Pairs()[0][1])
	if err != nil || res == nil {
		t.Errorf("snapshot not repaired after recompute: (%v, %v)", res, err)
	}
}
