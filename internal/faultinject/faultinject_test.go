package faultinject

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestHitUnarmed(t *testing.T) {
	defer Reset()
	if err := Hit("nowhere"); err != nil {
		t.Fatalf("unarmed point injected %v", err)
	}
}

func TestSetClearReset(t *testing.T) {
	if !Enabled {
		t.Skip("fault injection compiled out")
	}
	defer Reset()
	boom := errors.New("boom")
	Set("p1", func() error { return boom })
	if err := Hit("p1"); !errors.Is(err, boom) {
		t.Fatalf("armed point returned %v", err)
	}
	if err := Hit("p2"); err != nil {
		t.Fatalf("other point injected %v", err)
	}
	Clear("p1")
	if err := Hit("p1"); err != nil {
		t.Fatalf("cleared point injected %v", err)
	}
	// Arming with a nil hook is equivalent to clearing.
	Set("p1", func() error { return boom })
	Set("p1", nil)
	if err := Hit("p1"); err != nil {
		t.Fatalf("nil-armed point injected %v", err)
	}
	Set("p1", func() error { return boom })
	Set("p3", func() error { return boom })
	Reset()
	if Hit("p1") != nil || Hit("p3") != nil {
		t.Fatal("Reset left points armed")
	}
}

func TestFailOnCall(t *testing.T) {
	if !Enabled {
		t.Skip("fault injection compiled out")
	}
	defer Reset()
	boom := errors.New("boom")
	Set("p", FailOnCall(3, boom))
	for i := 1; i <= 5; i++ {
		err := Hit("p")
		if (i == 3) != (err != nil) {
			t.Fatalf("call %d: err = %v", i, err)
		}
	}
}

func TestPanicOnCall(t *testing.T) {
	if !Enabled {
		t.Skip("fault injection compiled out")
	}
	defer Reset()
	Set("p", PanicOnCall(2, "crash"))
	if err := Hit("p"); err != nil {
		t.Fatalf("call 1 injected %v", err)
	}
	defer func() {
		if r := recover(); r != "crash" {
			t.Errorf("recovered %v, want crash", r)
		}
	}()
	Hit("p")
	t.Fatal("call 2 did not panic")
}

// TestConcurrentHits exercises the registry from many goroutines so the
// race-enabled tier-1 run proves Hit/Set/Clear are safe to interleave.
func TestConcurrentHits(t *testing.T) {
	if !Enabled {
		t.Skip("fault injection compiled out")
	}
	defer Reset()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("p%d", g%4)
			for i := 0; i < 200; i++ {
				Set(name, func() error { return nil })
				Hit(name)
				Clear(name)
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < 4; g++ {
		if err := Hit(fmt.Sprintf("p%d", g)); err != nil {
			t.Errorf("point p%d still armed: %v", g, err)
		}
	}
}
