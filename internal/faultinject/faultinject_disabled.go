//go:build nofaultinject

package faultinject

// Enabled reports whether the fault-injection layer is compiled in.
const Enabled = false

// Fn is a failure hook (see the !nofaultinject build).
type Fn func() error

// Set is a no-op in nofaultinject builds.
func Set(string, Fn) {}

// Clear is a no-op in nofaultinject builds.
func Clear(string) {}

// Reset is a no-op in nofaultinject builds.
func Reset() {}

// Hit never injects a fault in nofaultinject builds; the call inlines to
// nothing, so release binaries pay zero cost at every failure point.
func Hit(string) error { return nil }

// FailOnCall returns an inert hook in nofaultinject builds.
func FailOnCall(uint64, error) Fn { return func() error { return nil } }

// PanicOnCall returns an inert hook in nofaultinject builds.
func PanicOnCall(uint64, any) Fn { return func() error { return nil } }
