//go:build !nofaultinject

// Package faultinject is a deterministic failure-point registry used by
// tests to prove the pipeline's fault-tolerance paths: worker-panic
// isolation, skip-and-count degradation, cooperative cancellation and
// lenient data loading.
//
// Pipeline code calls Hit(name) at a named failure point; tests arm the
// point with Set(name, fn). The hook either returns an error (injected I/O
// or worker failure) or panics (injected worker crash). Unarmed points cost
// a single atomic load, and the whole registry compiles to constant no-ops
// under the nofaultinject build tag, so release builds carry no injection
// machinery at all (see faultinject_disabled.go).
//
// The registry is process-global; tests that arm points must Reset (or
// Clear) them when done and must not run in parallel with other
// injection-sensitive tests of the same package.
package faultinject

import (
	"sync"
	"sync/atomic"
)

// Enabled reports whether the fault-injection layer is compiled in. Tests
// that arm failure points should skip when it is false.
const Enabled = true

// Fn is a failure hook. A non-nil return injects a failure at the point; a
// panic inside the hook injects a worker crash. Returning nil means "no
// fault this time", letting hooks target a specific call ordinal.
type Fn func() error

var (
	// armed counts armed points so that Hit is one atomic load when the
	// registry is idle — the common case even in test builds.
	armed atomic.Int32

	mu    sync.Mutex
	hooks = make(map[string]Fn)
)

// Set arms the named failure point with a hook, replacing any previous one.
func Set(name string, fn Fn) {
	if fn == nil {
		Clear(name)
		return
	}
	mu.Lock()
	if _, exists := hooks[name]; !exists {
		armed.Add(1)
	}
	hooks[name] = fn
	mu.Unlock()
}

// Clear disarms the named failure point.
func Clear(name string) {
	mu.Lock()
	if _, exists := hooks[name]; exists {
		armed.Add(-1)
		delete(hooks, name)
	}
	mu.Unlock()
}

// Reset disarms every failure point.
func Reset() {
	mu.Lock()
	armed.Add(-int32(len(hooks)))
	hooks = make(map[string]Fn)
	mu.Unlock()
}

// Hit evaluates the named failure point: nil when the point is unarmed,
// otherwise whatever the armed hook returns (or panics). The hook runs
// outside the registry lock, so it may call back into the registry.
func Hit(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	fn := hooks[name]
	mu.Unlock()
	if fn == nil {
		return nil
	}
	return fn()
}

// FailOnCall returns a hook that injects err on exactly the n-th call
// (1-based) and nothing on every other call.
func FailOnCall(n uint64, err error) Fn {
	var calls atomic.Uint64
	return func() error {
		if calls.Add(1) == n {
			return err
		}
		return nil
	}
}

// PanicOnCall returns a hook that panics with v on exactly the n-th call
// (1-based).
func PanicOnCall(n uint64, v any) Fn {
	var calls atomic.Uint64
	return func() error {
		if calls.Add(1) == n {
			panic(v)
		}
		return nil
	}
}
