# censuslink — temporal group linkage for census data (EDBT 2017 reproduction)

GO ?= go

.PHONY: all build test vet check bench bench-regress pgo pgo-profile shard-smoke store-golden chaos report fuzz fuzz-smoke clean

all: build vet test

# Tier-1 gate: everything a change must keep green before merging.
check:
	$(GO) vet ./...
	$(GO) test -race ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# One iteration of every table/figure benchmark plus the micro benchmarks,
# then the naive-vs-compiled pre-matching trajectory report and the
# serving-layer load report (the loadgen harness against a precomputed
# synthetic series).
bench:
	$(GO) test -bench=. -benchmem ./...
	CENSUSLINK_BENCH_JSON=BENCH_prematch.json $(GO) test -run TestBenchTrajectory -v .
	CENSUSLINK_SERVER_BENCH_JSON=$(CURDIR)/BENCH_server.json $(GO) test -count=1 -run TestServerBenchTrajectory -v ./cmd/loadgen

# Performance regression gate: re-measure the compiled pre-matching pass
# and the serving layer, failing when either is slower than its committed
# baseline allows (2x per op for pre-matching, 5x p50 for serving) or when
# the conditional-GET revalidation ratio drops below 0.9.
bench-regress:
	CENSUSLINK_BENCH_BASELINE=BENCH_prematch.json $(GO) test -run TestBenchTrajectory -v .
	CENSUSLINK_SERVER_BENCH_BASELINE=$(CURDIR)/BENCH_server.json $(GO) test -count=1 -run TestServerBenchTrajectory -v ./cmd/loadgen

# Regenerate the CPU profile that feeds the PGO build: profile the Table 3
# pre-matching sweep (the comparator/blocking hot path) through benchall's
# -cpuprofile flag. The resulting default.pgo is committed so `make pgo`
# and CI reproduce the same optimized build without re-profiling.
pgo-profile:
	$(GO) run ./cmd/benchall -scale 0.05 -seed 1871 -only table3 -cpuprofile default.pgo

# Profile-guided build of every package and binary using the committed
# default profile (see pgo-profile to refresh it after hot-path changes).
pgo:
	$(GO) build -pgo=$(CURDIR)/default.pgo ./...

# Sharded differential gate: the K-shard determinism tests under -race,
# then a quarter-scale end-to-end run proving shards 1 and 8 produce
# identical record links, group links and provenance.
shard-smoke:
	$(GO) test -count=1 -race -run 'TestShardDeterminism|TestPreMatchShardedDifferential|TestMatchRemainingSharded|TestPartitionCoversKeyedPairs' ./internal/linkage/
	CENSUSLINK_SHARD_SMOKE=1 $(GO) test -count=1 -run TestShardSmoke -v .

# Snapshot-store golden gate: format round trip, deterministic payloads,
# corruption rejection, and the end-to-end incremental differential (a warm
# re-run performs zero comparisons and returns byte-identical results).
store-golden:
	$(GO) test -count=1 -run 'TestRoundTripGolden|TestDeterministicPayload|TestLoadMissing|TestRejectsUntrustedSnapshots|TestWrongKeyDifferentAddress|TestOverwriteIsAtomicSingleFile' ./internal/store/
	$(GO) test -count=1 -run 'TestLinkSeriesIncremental' ./internal/linkage/

# Crash-safety gate: kill -9 a real linkserver mid-snapshot-write in a
# loop and audit that every surviving file loads deep-equal to a recomputed
# result or is quarantined, then check two replicas converge over the
# shared store with store_degraded 0.
chaos:
	$(GO) build -o bin/linkserver ./cmd/linkserver
	$(GO) build -o bin/storechaos ./cmd/storechaos
	bin/storechaos -linkserver bin/linkserver -cycles 30

# Regenerate the full experiment report at the canonical scale.
report:
	$(GO) run ./cmd/benchall -scale 0.1 -seed 1871 -o experiments_scale010.txt

# Short fuzzing session over the parsing/encoding surfaces.
fuzz:
	$(GO) test ./internal/strsim/ -fuzz FuzzEncoders -fuzztime 20s
	$(GO) test ./internal/census/ -fuzz FuzzReadCSV -fuzztime 20s

# Seconds-long fuzz pass for CI: enough to exercise the seed corpus plus a
# little mutation without stalling the pipeline.
fuzz-smoke:
	$(GO) test ./internal/strsim/ -run FuzzEncoders -fuzz FuzzEncoders -fuzztime 5s
	$(GO) test ./internal/census/ -run FuzzReadCSV -fuzz FuzzReadCSV -fuzztime 5s

clean:
	$(GO) clean ./...
