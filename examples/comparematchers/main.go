// Comparematchers: configure custom similarity functions — different string
// matchers and weighting vectors — and compare their linkage quality on a
// synthetic census pair; the workflow behind the paper's Table 3, run the
// way a library user would.
//
//	go run ./examples/comparematchers
package main

import (
	"fmt"
	"log"
	"os"

	"censuslink/internal/census"
	"censuslink/internal/evaluate"
	"censuslink/internal/linkage"
	"censuslink/internal/report"
	"censuslink/internal/strsim"
	"censuslink/internal/synth"
)

func main() {
	old, new, err := synth.GeneratePair(synth.TestConfig(0.04, 7), 1871, 1881)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("linking %d records (1871) to %d records (1881)\n\n",
		old.NumRecords(), new.NumRecords())

	// Three candidate similarity functions: the paper's ω1 and ω2 (bigram
	// based) and a Jaro-Winkler variant of ω2.
	jw := linkage.SimFunc{
		Name:  "omega2-jarowinkler",
		Delta: 0.7,
		Matchers: []linkage.AttributeMatcher{
			{Attr: census.AttrFirstName, Sim: strsim.JaroWinkler, Weight: 0.4},
			{Attr: census.AttrSex, Sim: strsim.Exact, Weight: 0.2},
			{Attr: census.AttrSurname, Sim: strsim.JaroWinkler, Weight: 0.2},
			{Attr: census.AttrAddress, Sim: strsim.JaroWinkler, Weight: 0.1},
			{Attr: census.AttrOccupation, Sim: strsim.JaroWinkler, Weight: 0.1},
		},
	}
	candidates := []linkage.SimFunc{
		linkage.OmegaOne(0.7),
		linkage.OmegaTwo(0.7),
		jw,
	}

	truthRecords := evaluate.TrueRecordMapping(old, new)
	truthGroups := evaluate.TrueGroupMapping(old, new)

	t := &report.Table{
		Title:  "Linkage quality by similarity function",
		Header: []string{"sim func", "rec P", "rec R", "rec F", "grp P", "grp R", "grp F"},
	}
	for _, f := range candidates {
		cfg := linkage.DefaultConfig()
		cfg.Sim = f
		res, err := linkage.Link(old, new, cfg)
		if err != nil {
			log.Fatal(err)
		}
		rm := evaluate.RecordMetrics(res.RecordLinks, truthRecords)
		gm := evaluate.GroupMetrics(res.GroupLinks, truthGroups)
		t.AddRow(f.Name,
			report.Pct(rm.Precision), report.Pct(rm.Recall), report.Pct(rm.F1),
			report.Pct(gm.Precision), report.Pct(gm.Recall), report.Pct(gm.F1))
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
