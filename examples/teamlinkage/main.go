// Teamlinkage: the paper's future-work scenario — apply temporal group
// linkage to research teams instead of households. Two "census" snapshots
// of a lab are taken five years apart: researchers are records, teams are
// groups, and the head-relative roles map onto PI/member roles. The same
// iterative subgraph machinery then links researchers (who may change
// teams, surnames, or job titles) and teams (which split, merge and
// dissolve).
//
//	go run ./examples/teamlinkage
package main

import (
	"fmt"
	"log"

	"censuslink/internal/block"
	"censuslink/internal/census"
	"censuslink/internal/evolution"
	"censuslink/internal/linkage"
	"censuslink/internal/strsim"
)

// researcher describes one person in a snapshot. The census.Record mapping:
// FirstName/Surname = name, Occupation = research topic, Address = building,
// Age = academic age (years since first publication) — which advances with
// the snapshot interval exactly like a person's age between censuses.
type researcher struct {
	id, team        string
	first, last     string
	topic, building string
	academicAge     int
	role            census.Role // RoleHead = PI, RoleSon/Daughter = member
	sex             census.Sex
}

func snapshot(year int, rs []researcher) *census.Dataset {
	d := census.NewDataset(year)
	for _, r := range rs {
		if err := d.AddRecord(&census.Record{
			ID:          r.id,
			HouseholdID: r.team,
			FirstName:   r.first,
			Surname:     r.last,
			Sex:         r.sex,
			Age:         r.academicAge,
			Address:     r.building,
			Occupation:  r.topic,
			Role:        r.role,
		}); err != nil {
			log.Fatal(err)
		}
	}
	return d
}

func main() {
	// 2010: two research groups.
	old := snapshot(2010, []researcher{
		// The database group: PI Lina Weber and four members.
		{"2010_1", "db", "lina", "weber", "query optimisation", "building e1", 18, census.RoleHead, census.SexFemale},
		{"2010_2", "db", "marko", "petrov", "query optimisation", "building e1", 9, census.RoleSon, census.SexMale},
		{"2010_3", "db", "aisha", "khan", "record linkage", "building e1", 6, census.RoleDaughter, census.SexFemale},
		{"2010_4", "db", "tomas", "lind", "record linkage", "building e1", 3, census.RoleSon, census.SexMale},
		{"2010_5", "db", "sara", "moretti", "graph databases", "building e1", 2, census.RoleDaughter, census.SexFemale},
		// The systems group: PI Jan Novak and three members.
		{"2010_6", "sys", "jan", "novak", "distributed storage", "building c2", 21, census.RoleHead, census.SexMale},
		{"2010_7", "sys", "elena", "fischer", "consensus protocols", "building c2", 7, census.RoleDaughter, census.SexFemale},
		{"2010_8", "sys", "david", "okafor", "distributed storage", "building c2", 4, census.RoleSon, census.SexMale},
	})

	// 2015: Aisha Khan became a PI and took Tomas Lind with her (a split);
	// Sara Moretti married and publishes as Sara Keller; Elena Fischer
	// moved to the new group; a fresh unrelated group arrived whose PI is
	// also named Weber.
	new := snapshot(2015, []researcher{
		{"2015_1", "db", "lina", "weber", "query optimisation", "building e1", 23, census.RoleHead, census.SexFemale},
		{"2015_2", "db", "marko", "petrov", "query compilation", "building e1", 14, census.RoleSon, census.SexMale},
		{"2015_3", "db", "sara", "keller", "graph databases", "building e1", 7, census.RoleDaughter, census.SexFemale},
		{"2015_4", "linkage", "aisha", "khan", "record linkage", "building b4", 11, census.RoleHead, census.SexFemale},
		{"2015_5", "linkage", "tomas", "lind", "record linkage", "building b4", 8, census.RoleSon, census.SexMale},
		{"2015_6", "linkage", "elena", "fischer", "temporal linkage", "building b4", 12, census.RoleDaughter, census.SexFemale},
		{"2015_7", "sys", "jan", "novak", "distributed storage", "building c2", 26, census.RoleHead, census.SexMale},
		{"2015_8", "sys", "david", "okafor", "cloud storage", "building c2", 9, census.RoleSon, census.SexMale},
		// The unrelated new group.
		{"2015_9", "ml", "karl", "weber", "neural networks", "building a3", 24, census.RoleHead, census.SexMale},
		{"2015_10", "ml", "mia", "larsen", "neural networks", "building a3", 4, census.RoleDaughter, census.SexFemale},
	})

	// Team-domain similarity function: names dominate, topic and building
	// use token-based matching (multi-word values).
	sim := linkage.SimFunc{
		Name:  "team",
		Delta: 0.7,
		Matchers: []linkage.AttributeMatcher{
			{Attr: census.AttrFirstName, Sim: strsim.JaroWinkler, Weight: 0.35},
			{Attr: census.AttrSurname, Sim: strsim.JaroWinkler, Weight: 0.25},
			{Attr: census.AttrSex, Sim: strsim.Exact, Weight: 0.1},
			{Attr: census.AttrOccupation, Sim: strsim.TokenDice, Weight: 0.2},
			{Attr: census.AttrAddress, Sim: strsim.TokenDice, Weight: 0.1},
		},
	}
	cfg := linkage.Config{
		Sim:          sim,
		DeltaHigh:    0.9,
		DeltaLow:     0.7,
		DeltaStep:    0.05,
		Alpha:        0.2,
		Beta:         0.7,
		AgeTolerance: 2, // academic age advances with the 5-year interval
		Remainder:    sim.WithDelta(0.65),
		Strategies: []block.Strategy{
			block.SurnameSoundex(),
			block.FirstNameSoundexSex(),
		},
		StopOnEmpty: true,
	}
	res, err := linkage.Link(old, new, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Researcher links:")
	for _, l := range res.RecordLinks {
		o, n := old.Record(l.Old), new.Record(l.New)
		note := ""
		if o.HouseholdID != n.HouseholdID {
			note = "  [changed team]"
		}
		fmt.Printf("  %-16s %-22s -> %-16s %-22s%s\n",
			o.FirstName+" "+o.Surname, "("+o.HouseholdID+", "+o.Occupation+")",
			n.FirstName+" "+n.Surname, "("+n.HouseholdID+", "+n.Occupation+")", note)
	}

	fmt.Println("\nTeam links:")
	for _, g := range res.GroupLinks {
		fmt.Printf("  %s -> %s\n", g.Old, g.New)
	}

	a := evolution.Analyze(old, new, res)
	fmt.Println("\nTeam evolution:")
	for _, p := range a.PreservedGroups {
		fmt.Printf("  preserved: %s -> %s\n", p[0], p[1])
	}
	for _, s := range a.Splits {
		fmt.Printf("  split: %s -> %v\n", s.Old, s.News)
	}
	for _, m := range a.Moves {
		fmt.Printf("  member moved between %s and %s\n", m[0], m[1])
	}
	for _, id := range a.AddedGroups {
		fmt.Printf("  new team: %s\n", id)
	}
	for _, id := range a.RemovedGroups {
		fmt.Printf("  dissolved team: %s\n", id)
	}
}
