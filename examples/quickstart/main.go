// Quickstart: link the paper's running example (Fig. 1) — two censuses of
// 1871 and 1881 with the Ashworth, Smith and Riley families — and print the
// resulting record and group mappings.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"censuslink/internal/block"
	"censuslink/internal/linkage"
	"censuslink/internal/paperexample"
)

func main() {
	old, new := paperexample.Old(), paperexample.New()
	fmt.Printf("1871: %d persons in %d households\n", old.NumRecords(), old.NumHouseholds())
	fmt.Printf("1881: %d persons in %d households\n\n", new.NumRecords(), new.NumHouseholds())

	// The configuration of the paper's walk-through: name-only pre-matching
	// at threshold 1 (Fig. 3), group-selection weights (0.2, 0.7), and a
	// relaxed name-only pass for the leftover records.
	cfg := linkage.Config{
		Sim:          linkage.NameOnly(1.0),
		DeltaHigh:    1.0,
		DeltaLow:     1.0,
		Alpha:        0.2,
		Beta:         0.7,
		AgeTolerance: 3,
		Remainder:    linkage.NameOnly(0.6),
		Strategies:   block.DefaultStrategies(),
		StopOnEmpty:  true,
	}
	res, err := linkage.Link(old, new, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Record mapping (person links):")
	for _, l := range res.RecordLinks {
		o, n := old.Record(l.Old), new.Record(l.New)
		fmt.Printf("  %s %s (%d, %s) -> %s %s (%d, %s)   sim=%.2f\n",
			o.FirstName, o.Surname, o.Age, o.ID,
			n.FirstName, n.Surname, n.Age, n.ID, l.Sim)
	}

	fmt.Println("\nGroup mapping (household links):")
	for _, g := range res.GroupLinks {
		fmt.Printf("  %s -> %s\n", g.Old, g.New)
	}

	// Check against the paper's expected outcome: seven person links and
	// four household links (Section 2).
	want := paperexample.TrueRecordMapping()
	correct := 0
	for _, l := range res.RecordLinks {
		if want[l.Old] == l.New {
			correct++
		}
	}
	fmt.Printf("\n%d of %d person links match the paper's ground truth; "+
		"%d household links (paper: 4)\n", correct, len(want), len(res.GroupLinks))
}
