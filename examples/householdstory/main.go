// Householdstory: generate a small synthetic district, link all six
// censuses 1851-1901, and follow the longest-preserved households through
// the evolution graph, printing each one's member roster decade by decade —
// the kind of family reconstitution the paper's Section 4.2 motivates.
//
//	go run ./examples/householdstory
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"censuslink/internal/census"
	"censuslink/internal/evolution"
	"censuslink/internal/linkage"
	"censuslink/internal/synth"
)

func main() {
	series, err := synth.Generate(synth.TestConfig(0.03, 1901))
	if err != nil {
		log.Fatal(err)
	}

	results, err := linkage.LinkSeries(series, linkage.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	graph, err := evolution.BuildGraph(series, results)
	if err != nil {
		log.Fatal(err)
	}

	// Follow preserve_G edges from every 1851 household and keep the
	// longest chains.
	type chain struct {
		vertices []evolution.GroupVertex
	}
	next := preserveSuccessors(graph)
	var chains []chain
	first := series.Datasets[0]
	for _, h := range first.Households() {
		c := chain{vertices: []evolution.GroupVertex{{Year: first.Year, Household: h.ID}}}
		for {
			succ, ok := next[c.vertices[len(c.vertices)-1]]
			if !ok {
				break
			}
			c.vertices = append(c.vertices, succ)
		}
		chains = append(chains, c)
	}
	sort.SliceStable(chains, func(i, j int) bool {
		return len(chains[i].vertices) > len(chains[j].vertices)
	})

	shown := 0
	for _, c := range chains {
		if len(c.vertices) < 4 || shown == 3 {
			break
		}
		shown++
		head := headName(series, c.vertices[0])
		fmt.Printf("=== The household of %s: preserved %d decades ===\n",
			head, len(c.vertices)-1)
		for _, v := range c.vertices {
			d := series.Dataset(v.Year)
			hh := d.Household(v.Household)
			var members []string
			for _, m := range d.Members(hh) {
				members = append(members, fmt.Sprintf("%s %s (%s, %d)",
					m.FirstName, m.Surname, m.Role, m.Age))
			}
			fmt.Printf("%d  %-24s %s\n", v.Year, hh.Address, strings.Join(members, "; "))
		}
		fmt.Println()
	}
	if shown == 0 {
		fmt.Println("no household preserved over 3+ decades in this small sample; try a larger -scale")
	}
}

// preserveSuccessors extracts the preserve_G successor map from the graph's
// typed edges.
func preserveSuccessors(g *evolution.Graph) map[evolution.GroupVertex]evolution.GroupVertex {
	next := make(map[evolution.GroupVertex]evolution.GroupVertex)
	for _, e := range g.GroupEdges {
		if e.Pattern == evolution.PatternPreserve {
			next[e.From] = e.To
		}
	}
	return next
}

func headName(series *census.Series, v evolution.GroupVertex) string {
	d := series.Dataset(v.Year)
	if head := d.Head(d.Household(v.Household)); head != nil {
		return head.FirstName + " " + head.Surname
	}
	return v.Household
}
