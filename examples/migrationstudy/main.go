// Migrationstudy: the Section 5.4 workflow as a library user — generate a
// district, link all censuses, and study household dynamics: evolution
// pattern volumes per decade, how long households persist, and how
// connected the district's family network is.
//
//	go run ./examples/migrationstudy
package main

import (
	"fmt"
	"log"
	"os"

	"censuslink/internal/evolution"
	"censuslink/internal/linkage"
	"censuslink/internal/report"
	"censuslink/internal/synth"
)

func main() {
	series, err := synth.Generate(synth.TestConfig(0.04, 42))
	if err != nil {
		log.Fatal(err)
	}

	results, err := linkage.LinkSeries(series, linkage.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	graph, err := evolution.BuildGraph(series, results)
	if err != nil {
		log.Fatal(err)
	}

	// Decade-by-decade dynamics (the paper's Fig. 6).
	dynamics := &report.Table{
		Title:  "Household dynamics per decade",
		Header: []string{"pair", "preserved", "new", "gone", "moves", "splits", "merges"},
	}
	for i, counts := range graph.PatternCounts() {
		a := graph.Analyses[i]
		dynamics.AddRow(fmt.Sprintf("%d-%d", a.OldYear, a.NewYear),
			report.I(counts[evolution.PatternPreserve]),
			report.I(counts[evolution.PatternAdd]),
			report.I(counts[evolution.PatternRemove]),
			report.I(counts[evolution.PatternMove]),
			report.I(counts[evolution.PatternSplit]),
			report.I(counts[evolution.PatternMerge]))
	}
	if err := dynamics.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Persistence (the paper's Table 8): how many households survive k
	// decades in place?
	fmt.Println()
	persistence := &report.Table{
		Title:  "Household persistence",
		Header: []string{"years in place", "households"},
	}
	for k := 1; k < len(series.Datasets); k++ {
		persistence.AddRow(report.I(10*k), report.I(graph.PreserveChains(k)))
	}
	if err := persistence.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Lifecycle statistics: how long does a household stay together?
	fmt.Println()
	curve := graph.SurvivalCurve()
	fmt.Printf("household survival: ")
	for k, frac := range curve {
		fmt.Printf("%d0y %.0f%%  ", k+1, frac*100)
	}
	fmt.Printf("\nmean time in place: %.1f decades\n", graph.MeanLifespan())

	// Connectedness of the family network across 50 years.
	fmt.Println()
	sizes := graph.ConnectedComponents()
	size, share := graph.LargestComponentShare()
	fmt.Printf("evolution graph: %d components over %d household vertices\n",
		len(sizes), total(sizes))
	fmt.Printf("largest component: %d households (%.1f%%) — families connected across 1851-1901\n",
		size, share*100)

	// Individual-level summary over the whole period.
	fmt.Println()
	for i, a := range graph.Analyses {
		_ = i
		fmt.Printf("%d-%d: %d persons traced, %d newly appeared, %d disappeared\n",
			a.OldYear, a.NewYear, len(a.PreservedRecords), len(a.AddedRecords), len(a.RemovedRecords))
	}
}

func total(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}
