module censuslink

go 1.22
